// Package experiments reproduces the paper's evaluation: it builds the
// single-AS (Section 4) and multi-AS (Section 5) testbeds, runs the
// profiling pass, executes each mapping approach under each application
// workload, and emits the series behind every figure (3, 5–13) plus the
// headline claims. See EXPERIMENTS.md for the recorded outputs.
package experiments

import (
	"fmt"
	"os"

	"massf/internal/cluster"
	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/faults"
	"massf/internal/fluid"
	"massf/internal/mabrite"
	"massf/internal/model"
	"massf/internal/netmon"
	"massf/internal/netsim"
	"massf/internal/profile"
	"massf/internal/routing/interdomain"
	"massf/internal/runspec"
	"massf/internal/topology"
	"massf/internal/traffic"
)

// Scale fixes the experiment size. The paper runs 20,000 routers (100 AS ×
// 200 routers) with 10,000 hosts, 8,000 clients, 2,000 servers on 90
// engines for ~30-minute applications; Reduced keeps every ratio but
// shrinks by 10× (and the horizon much further) so the full suite runs on
// a laptop.
type Scale struct {
	Name         string
	Routers      int // single-AS router count
	ASes         int // multi-AS AS count
	RoutersPerAS int
	Hosts        int
	Clients      int
	Servers      int
	AppHosts     int
	Engines      int
	Horizon      des.Time
	EventCost    des.Time
	Seed         int64
}

// Reduced returns the default laptop-friendly scale (10× smaller than the
// paper, 8 s of simulated time).
func Reduced() Scale {
	return Scale{
		Name:         "reduced",
		Routers:      2000,
		ASes:         20,
		RoutersPerAS: 100,
		Hosts:        1000,
		Clients:      800,
		Servers:      190,
		AppHosts:     7,
		Engines:      16,
		Horizon:      8 * des.Second,
		EventCost:    15 * des.Microsecond,
		Seed:         1,
	}
}

// Paper returns the paper's full scale. Expect long runtimes and a large
// memory footprint; the partitioning stages are fast, the packet
// simulation is the expensive part.
func Paper() Scale {
	return Scale{
		Name:         "paper",
		Routers:      20000,
		ASes:         100,
		RoutersPerAS: 200,
		Hosts:        10000,
		Clients:      8000,
		Servers:      2000,
		AppHosts:     7,
		Engines:      90,
		Horizon:      30 * des.Second,
		EventCost:    15 * des.Microsecond,
		Seed:         1,
	}
}

// FromEnv returns Paper() when MASSF_FULL=1, else Reduced().
func FromEnv() Scale {
	if os.Getenv("MASSF_FULL") == "1" {
		return Paper()
	}
	return Reduced()
}

// Workload selects the foreground application.
type Workload int

// The two foreground applications of the evaluation, plus a
// background-only workload (HTTP traffic with no foreground application,
// used by the run-control daemon for load-only scenarios).
const (
	ScaLapack Workload = iota
	GridNPB
	HTTPOnly
)

// String implements fmt.Stringer.
func (w Workload) String() string {
	switch w {
	case ScaLapack:
		return "ScaLapack"
	case GridNPB:
		return "GridNPB"
	default:
		return "http-only"
	}
}

// Setup is a built testbed: topology, routing, host roles, and (after
// RunProfiling) the traffic profile the PROF approaches consume.
type Setup struct {
	Scale   Scale
	MultiAS bool
	Net     *model.Network
	Routes  netsim.Routes
	// Router is the concrete interdomain router behind Routes — the base
	// routing epoch a fault plane advances from.
	Router *interdomain.Router
	Sync   cluster.SyncCostModel

	Hosts    []model.NodeID
	AppHosts []model.NodeID
	Clients  []model.NodeID
	Servers  []model.NodeID

	Profile *profile.Profile
}

// BuildSingleAS constructs the Section 4 testbed: a flat power-law network
// with OSPF routing.
func BuildSingleAS(sc Scale) (*Setup, error) {
	net, err := topology.GenerateFlat(topology.FlatOptions{
		Routers: sc.Routers, Hosts: sc.Hosts, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	return finishSetup(sc, net, false, nil)
}

// BuildMultiAS constructs the Section 5 testbed: an Internet-like multi-AS
// network with automatically configured BGP policy routing plus OSPF inside
// every AS.
func BuildMultiAS(sc Scale) (*Setup, error) {
	net, err := mabrite.Generate(mabrite.Options{
		ASes: sc.ASes, RoutersPerAS: sc.RoutersPerAS, Hosts: sc.Hosts, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	return finishSetup(sc, net, true, nil)
}

// NewSetup builds a Setup from an already-constructed network — the
// run-control daemon's entry point, where topologies may arrive as DML
// uploads rather than through the built-in generators. Scale supplies the
// host roles, engine count, horizon and seed; the topology fields of Scale
// are ignored.
func NewSetup(net *model.Network, sc Scale, multi bool) (*Setup, error) {
	return finishSetup(sc, net, multi, nil)
}

// NewSetupScoped is NewSetup for one distributed worker's slice: routing
// state is scoped to the nodes marked in scope (next-hop trees retain only
// owned entries, computed lazily on first lookup) and no eager route
// warm-up runs. Host-role selection still spans the full network so every
// worker derives identical clients/servers/app hosts; only the retained
// state is slice-local.
func NewSetupScoped(net *model.Network, sc Scale, multi bool, scope []bool) (*Setup, error) {
	return finishSetup(sc, net, multi, scope)
}

func finishSetup(sc Scale, net *model.Network, multi bool, scope []bool) (*Setup, error) {
	st := &Setup{Scale: sc, MultiAS: multi, Net: net, Sync: cluster.DefaultTeraGrid()}
	var router *interdomain.Router
	if scope != nil {
		router = interdomain.NewScoped(net, scope)
	} else {
		router = interdomain.New(net)
	}
	st.Routes = router
	st.Router = router
	for i := range net.Nodes {
		if net.Nodes[i].Kind == model.Host {
			st.Hosts = append(st.Hosts, model.NodeID(i))
		}
	}
	if len(st.Hosts) < sc.AppHosts+2 {
		return nil, fmt.Errorf("experiments: only %d hosts generated; need ≥ %d", len(st.Hosts), sc.AppHosts+2)
	}
	// Application hosts: spread across the host list (distinct attachment
	// points with high probability).
	step := len(st.Hosts) / sc.AppHosts
	for i := 0; i < sc.AppHosts; i++ {
		st.AppHosts = append(st.AppHosts, st.Hosts[i*step])
	}
	// Clients and servers from the remaining hosts.
	taken := map[model.NodeID]bool{}
	for _, h := range st.AppHosts {
		taken[h] = true
	}
	var free []model.NodeID
	for _, h := range st.Hosts {
		if !taken[h] {
			free = append(free, h)
		}
	}
	nc, ns := sc.Clients, sc.Servers
	if nc+ns > len(free) {
		// Shrink proportionally for tiny test scales.
		ratio := float64(len(free)) / float64(nc+ns)
		nc = int(float64(nc) * ratio)
		ns = len(free) - nc
	}
	st.Clients = free[:nc]
	st.Servers = free[nc : nc+ns]
	// Warm routing caches for every traffic destination — replicated
	// builds only. A scoped router computes its slice-local trees lazily
	// on first lookup; eager warming would defeat the memory savings.
	if scope == nil {
		router.Prepare(st.Hosts)
	}
	return st, nil
}

// httpConfig is the background web workload shared by the packet and
// fluid fidelities: same clients, servers, seed and draw parameters, so a
// hybrid run's fluid background is the analytic twin of the packet one.
func (st *Setup) httpConfig() traffic.HTTPConfig {
	return traffic.HTTPConfig{
		Clients: st.Clients, Servers: st.Servers,
		MeanGap: 5 * des.Second, MeanFileBytes: 50_000, Seed: st.Scale.Seed,
	}
}

// install wires background + foreground traffic into a simulation. With
// hybrid fidelity the background HTTP load lives on the fluid plane
// (attached at netsim.New time), so only the foreground application is
// installed packet-level.
func (st *Setup) install(s *netsim.Sim, w Workload, hybrid bool) ([]*traffic.WorkflowStats, error) {
	if !hybrid {
		traffic.InstallHTTP(s, st.httpConfig())
	}
	var flows []traffic.Workflow
	switch w {
	case ScaLapack:
		flows = []traffic.Workflow{traffic.ScaLapack(st.AppHosts, traffic.DefaultScaLapack())}
	case GridNPB:
		flows = traffic.GridNPB(st.AppHosts)
	case HTTPOnly:
		// Background web traffic only.
	}
	var stats []*traffic.WorkflowStats
	for _, f := range flows {
		ws, err := traffic.InstallWorkflow(s, f, 0)
		if err != nil {
			return nil, err
		}
		stats = append(stats, ws)
	}
	return stats, nil
}

// RunProfiling executes the profiling pass of the PROF approaches: the
// full workload on a single engine (the naive partition's event counts are
// identical; a sequential pass avoids paying the naive partition's
// enormous synchronization bill twice). The profile is stored on the
// Setup.
func (st *Setup) RunProfiling(w Workload) error {
	s, err := netsim.New(netsim.Config{
		Net: st.Net, Routes: st.Routes, Engines: 1,
		Window: core.MaxMLL, End: st.Scale.Horizon,
		Sync: st.Sync, EventCost: st.Scale.EventCost, Seed: st.Scale.Seed,
	})
	if err != nil {
		return err
	}
	if _, err := st.install(s, w, false); err != nil {
		return err
	}
	res := s.Run()
	p := profile.FromResult(&res, st.Scale.Horizon)
	if st.Profile == nil {
		st.Profile = p
	} else if err := st.Profile.Merge(p); err != nil {
		return err
	}
	return nil
}

// MapApproach runs just the mapping stage (no packet simulation) — enough
// for the achieved-MLL figures and the partitioner ablations.
func (st *Setup) MapApproach(a core.Approach) (*core.Mapping, error) {
	return core.Map(st.Net, a, core.Config{
		Engines: st.Scale.Engines, Sync: st.Sync, Seed: st.Scale.Seed,
	}, st.Profile)
}

// RunOutcome bundles a full simulation run under one mapping.
type RunOutcome struct {
	Mapping *core.Mapping
	Result  netsim.Result
	Apps    []*traffic.WorkflowStats
}

// BuildSim constructs (but does not run) the full simulation for mapping m
// under workload w: the packet simulator on m's partition, background HTTP
// plus the selected foreground application. The caller owns Run — and may
// Stop it from another goroutine for cancellation.
//
// opt is the unified run configuration (runspec.RunSpec); BuildSim reads
// only the run-surface knobs — Telemetry, RealTimeFactor, SeriesBuckets,
// Faults, NetMon, NetSample, the hybrid-fidelity knobs (FlowFidelity,
// FluidQuantumUS) and the distributed-worker fields (Transport,
// FirstEngine, HostedEngines, Slice); the scale-level fields (Engines,
// Seconds, Seed, EventCostUS) are taken from Setup.Scale, which was sized
// before mapping. A Slice build pairs with a Setup from NewSetupScoped so
// routing state is slice-local too.
func (st *Setup) BuildSim(m *core.Mapping, w Workload, opt runspec.RunSpec) (*netsim.Sim, []*traffic.WorkflowStats, error) {
	window := m.MLL
	if window > core.MaxMLL {
		window = core.MaxMLL
	}
	var plane *faults.Plane
	if opt.Faults != nil {
		var err error
		plane, err = faults.NewPlane(st.Net, st.Router, opt.Faults)
		if err != nil {
			return nil, nil, err
		}
		// Slice mode keeps every routing epoch lazy too: the scoped
		// clones compute their trees on first lookup.
		if !opt.Slice {
			plane.Prepare(st.Hosts)
		}
	}
	cfg := netsim.Config{
		Net: st.Net, Routes: st.Routes, Part: m.Part, Engines: st.Scale.Engines,
		Window: window, End: st.Scale.Horizon,
		Sync: st.Sync, EventCost: st.Scale.EventCost, Seed: st.Scale.Seed,
		SeriesBuckets: opt.SeriesBuckets, RealTimeFactor: opt.RealTimeFactor,
		Telemetry: opt.Telemetry,
		Transport: opt.Transport, FirstEngine: opt.FirstEngine,
		HostedEngines: opt.HostedEngines, SliceBuild: opt.Slice,
	}
	if plane != nil {
		cfg.Faults = plane
	}
	if opt.Hybrid() {
		// Hybrid fidelity: the background HTTP workload moves to the
		// analytic fluid plane, precomputed here from exactly the inputs
		// every worker shares (network, routes, horizon, seed) so a
		// distributed run builds byte-identical planes everywhere. The
		// solver walks whole paths, which a scoped router refuses, so a
		// sliced worker builds a transient unscoped router just for this —
		// setup cost, paid once, and the fat routing state is dropped when
		// the build returns.
		routes := fluid.Routes(st.Routes)
		fplane := plane
		if opt.Slice {
			full := interdomain.New(st.Net)
			routes = full
			if opt.Faults != nil {
				var ferr error
				fplane, ferr = faults.NewPlane(st.Net, full, opt.Faults)
				if ferr != nil {
					return nil, nil, ferr
				}
			}
		}
		flows, next, _ := traffic.FluidHTTP(st.httpConfig(), st.Scale.Horizon)
		fcfg := fluid.Config{
			Net: st.Net, Routes: routes, End: st.Scale.Horizon,
			Quantum: opt.FluidQuantum(), Next: next,
		}
		if fplane != nil {
			fcfg.Faults = fplane
		}
		fp, err := fluid.Build(fcfg, flows)
		if err != nil {
			return nil, nil, err
		}
		cfg.Fluid = fp
	}
	if opt.NetMon || opt.NetSample > 0 {
		bw := make([]int64, len(st.Net.Links))
		for i := range st.Net.Links {
			bw[i] = st.Net.Links[i].Bandwidth
		}
		cfg.NetMon = netmon.New(netmon.Options{
			Links: len(st.Net.Links), Horizon: st.Scale.Horizon,
			SampleEvery: opt.NetSample, Bandwidths: bw,
		})
	}
	s, err := netsim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	apps, err := st.install(s, w, opt.Hybrid())
	if err != nil {
		return nil, nil, err
	}
	return s, apps, nil
}

// RunMapping maps the network with approach a and executes the full
// workload under that partition.
func (st *Setup) RunMapping(a core.Approach, w Workload) (*RunOutcome, error) {
	m, err := st.MapApproach(a)
	if err != nil {
		return nil, err
	}
	s, apps, err := st.BuildSim(m, w, runspec.RunSpec{})
	if err != nil {
		return nil, err
	}
	res := s.Run()
	return &RunOutcome{Mapping: m, Result: res, Apps: apps}, nil
}

// SecondsToTime converts seconds to simulated time (a CLI convenience).
func SecondsToTime(s float64) des.Time { return des.Time(s * float64(des.Second)) }

// DefaultSync returns the synchronization cost model the experiments use.
func DefaultSync() cluster.SyncCostModel { return cluster.DefaultTeraGrid() }

// Bench returns an extra-small scale used by the repository's benchmark
// harness so `go test -bench=.` finishes quickly; set MASSF_FULL=1 to
// bench at paper scale instead.
func Bench() Scale {
	return Scale{
		Name:         "bench",
		Routers:      600,
		ASes:         10,
		RoutersPerAS: 60,
		Hosts:        300,
		Clients:      220,
		Servers:      60,
		AppHosts:     7,
		Engines:      8,
		Horizon:      4 * des.Second,
		EventCost:    15 * des.Microsecond,
		Seed:         1,
	}
}

// BenchFromEnv returns Paper() when MASSF_FULL=1, else Bench().
func BenchFromEnv() Scale {
	if os.Getenv("MASSF_FULL") == "1" {
		return Paper()
	}
	return Bench()
}
