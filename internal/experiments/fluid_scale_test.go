package experiments_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/fluid"
	"massf/internal/model"
	"massf/internal/netsim"
	"massf/internal/routing/interdomain"
	"massf/internal/topology"
	"massf/internal/traffic"
)

// TestScale1MClientHybridRun is the hybrid-fidelity headline: one million
// simulated HTTP clients — closed request/think/response loops, ~50 KB
// mean transfers — carried by the analytic fluid plane over a
// 1000-router network, with a packet-level foreground population riding
// the same links, completed in one k=4 run. A million packet-level
// clients would be hopeless at this hardware budget; the fluid plane
// solves their entire timeline at setup and charges their load against
// the links the foreground packets traverse.
//
// The run's throughput (events/sec) and time compression (simulated
// seconds per wall second) are recorded in BENCH_pipeline.json under the
// label "fluid-1m" so the capability is pinned next to the code.
//
// Heavy (minutes, several GB): gated behind MASSF_SCALE=1.
func TestScale1MClientHybridRun(t *testing.T) {
	if os.Getenv("MASSF_SCALE") != "1" {
		t.Skip("1M-client hybrid scale run only runs with MASSF_SCALE=1")
	}
	const (
		routers = 1000
		hosts   = 3000
		clients = 1_000_000
		servers = 800
		engines = 4
		seed    = 7
	)
	horizon := 8 * des.Second

	buildStart := time.Now()
	net, err := topology.GenerateFlat(topology.FlatOptions{
		Routers: routers, Hosts: hosts, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	routes := interdomain.New(net)
	var hostIDs []model.NodeID
	for i := range net.Nodes {
		if net.Nodes[i].Kind == model.Host {
			hostIDs = append(hostIDs, model.NodeID(i))
		}
	}
	serverIDs := hostIDs[:servers]
	clientHosts := hostIDs[servers:]
	// A million clients over ~2200 attachment points: each client is its
	// own closed loop with its own RNG stream; hosts repeat, which is
	// exactly the "many clients behind one access link" shape.
	clientIDs := make([]model.NodeID, clients)
	for i := range clientIDs {
		clientIDs[i] = clientHosts[i%len(clientHosts)]
	}
	bgFlows, next, _ := traffic.FluidHTTP(traffic.HTTPConfig{
		Clients: clientIDs, Servers: serverIDs,
		MeanGap: 5 * des.Second, MeanFileBytes: 50_000, Seed: seed,
	}, horizon)
	plane, err := fluid.Build(fluid.Config{
		Net: net, Routes: routes, End: horizon,
		Quantum: 15 * des.Millisecond, Next: next,
	}, bgFlows)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Map(net, core.TOP2, core.Config{Engines: engines, Seed: seed}, nil)
	if err != nil {
		t.Fatal(err)
	}
	window := m.MLL
	if window > core.MaxMLL {
		window = core.MaxMLL
	}
	sim, err := netsim.New(netsim.Config{
		Net: net, Routes: routes, Part: m.Part, Engines: engines,
		Window: window, End: horizon, Seed: seed, Fluid: plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Packet-level foreground sharing the fluid-loaded links, so the run
	// exercises the hybrid coupling, not just the fluid plane.
	fg := traffic.InstallHTTP(sim, traffic.HTTPConfig{
		Clients: clientHosts[:400], Servers: serverIDs[:100],
		MeanGap: 1 * des.Second, MeanFileBytes: 50_000, Seed: seed + 1,
	})
	buildSec := time.Since(buildStart).Seconds()

	runStart := time.Now()
	res := sim.Run()
	wallSec := time.Since(runStart).Seconds()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.FluidStarted < clients {
		t.Errorf("FluidStarted = %d, want ≥ %d (every client's first request lands before the horizon)",
			res.FluidStarted, clients)
	}
	if res.FluidCompleted == 0 {
		t.Error("no fluid flow completed")
	}
	if res.FlowsStarted == 0 || fg.TotalResponses() == 0 {
		t.Errorf("foreground packet traffic degenerate: %d flows, %d responses",
			res.FlowsStarted, fg.TotalResponses())
	}
	eventsPerSec := float64(res.TotalEvents) / wallSec
	simPerWall := horizon.Seconds() / wallSec
	t.Logf("build %.1fs: %d fluid flows solved (%d clients), %d links", buildSec,
		res.FluidStarted, clients, len(net.Links))
	t.Logf("run   %.1fs: %d events (%.0f events/sec), %.2f simulated sec per wall sec, %d fluid completed, %.1f Gbit fluid payload",
		wallSec, res.TotalEvents, eventsPerSec, simPerWall,
		res.FluidCompleted, float64(res.FluidDeliveredBits)/1e9)

	if t.Failed() {
		return
	}
	if err := recordScaleRun("../../BENCH_pipeline.json", "fluid-1m", map[string]benchResult{
		"Scale1MClientHybridRun/events_per_sec":    {Iterations: int64(res.TotalEvents), NsPerOp: eventsPerSec},
		"Scale1MClientHybridRun/sim_time_per_wall": {Iterations: 1, NsPerOp: simPerWall},
		"Scale1MClientHybridRun/wall_sec":          {Iterations: 1, NsPerOp: wallSec},
		"Scale1MClientHybridRun/clients":           {Iterations: clients, NsPerOp: clients},
	}); err != nil {
		t.Fatalf("recording trajectory entry: %v", err)
	}
}

// benchResult / benchRun / benchFile mirror cmd/benchjson's trajectory
// schema so the scale run lands in the same BENCH_pipeline.json the
// bench harness maintains. ns_per_op is the schema's value slot; for
// these entries it carries the named rate or ratio, not a latency.
type benchResult struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	HasMem      bool    `json:"has_mem"`
}

type benchRun struct {
	Label   string                 `json:"label"`
	Results map[string]benchResult `json:"results"`
}

type benchFile struct {
	Runs []benchRun `json:"runs"`
}

// recordScaleRun appends (or replaces) one labeled entry in the
// trajectory file, exactly like `benchjson -label`.
func recordScaleRun(path, label string, results map[string]benchResult) error {
	var f benchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return err
		}
	}
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == label {
			f.Runs[i].Results = results
			replaced = true
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, benchRun{Label: label, Results: results})
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
