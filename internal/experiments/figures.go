// Figure-by-figure reproduction: every table or figure in the paper's
// evaluation has a function here that regenerates its series.
package experiments

import (
	"fmt"

	"massf/internal/cluster"
	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/metrics"
)

// SimulatedApproaches are the mappings the paper executes end to end in
// Figures 6–13 (legend order).
var SimulatedApproaches = []core.Approach{core.HPROF, core.PROF2, core.HTOP, core.TOP2}

// MapOnlyApproaches are shown only in the achieved-MLL figures (7 and 11):
// the paper reports that their simulations "cannot be completed in a
// reasonable time limit".
var MapOnlyApproaches = []core.Approach{core.PROF, core.TOP}

// Row is one approach's outcome under one workload.
type Row struct {
	Approach  core.Approach
	Simulated bool
	MLL       des.Time
	Report    metrics.Report
	AppRounds int
}

// Eval is the full outcome of one workload on one testbed.
type Eval struct {
	Workload Workload
	Rows     []Row
	// Fig3 retains the HPROF run's load series for Figure 3.
	Fig3 *RunOutcome
}

// RowFor returns the row of approach a.
func (e *Eval) RowFor(a core.Approach) *Row {
	for i := range e.Rows {
		if e.Rows[i].Approach == a {
			return &e.Rows[i]
		}
	}
	return nil
}

// Evaluate profiles the workload, then runs every simulated approach end to
// end and maps the map-only approaches, returning the figure rows.
func Evaluate(st *Setup, w Workload) (*Eval, error) {
	st.Profile = nil
	if err := st.RunProfiling(w); err != nil {
		return nil, err
	}
	ev := &Eval{Workload: w}
	for _, a := range SimulatedApproaches {
		out, err := st.RunMapping(a, w)
		if err != nil {
			return nil, fmt.Errorf("%v/%v: %w", a, w, err)
		}
		rep := metrics.FromStats(a.String(), out.Result.Stats, st.Scale.EventCost)
		rounds := 0
		for _, app := range out.Apps {
			rounds += app.Rounds
		}
		ev.Rows = append(ev.Rows, Row{
			Approach: a, Simulated: true, MLL: out.Mapping.MLL, Report: rep, AppRounds: rounds,
		})
		if a == core.HPROF {
			ev.Fig3 = out
		}
	}
	for _, a := range MapOnlyApproaches {
		m, err := st.MapApproach(a)
		if err != nil {
			return nil, err
		}
		ev.Rows = append(ev.Rows, Row{Approach: a, MLL: m.MLL})
	}
	return ev, nil
}

// netLabel names the testbed in table titles.
func netLabel(multi bool) string {
	if multi {
		return "Multi-AS"
	}
	return "Single-AS"
}

// SimTimeTable regenerates Figure 6 (single-AS) / Figure 10 (multi-AS):
// application simulation time per approach and workload.
func SimTimeTable(evals []*Eval, multi bool) *Table {
	fig := "Figure 6"
	if multi {
		fig = "Figure 10"
	}
	t := &Table{
		Title:   fmt.Sprintf("%s: Simulation Time on %s (modeled seconds)", fig, netLabel(multi)),
		Columns: []string{"Workload", "HPROF", "PROF2", "HTOP", "TOP2"},
	}
	for _, ev := range evals {
		row := []string{ev.Workload.String()}
		for _, a := range SimulatedApproaches {
			row = append(row, f2(ev.RowFor(a).Report.SimTimeSec))
		}
		t.AddRow(row...)
	}
	return t
}

// MLLTable regenerates Figure 7 / Figure 11: achieved MLL per approach,
// including the map-only TOP and PROF.
func MLLTable(evals []*Eval, multi bool) *Table {
	fig := "Figure 7"
	if multi {
		fig = "Figure 11"
	}
	t := &Table{
		Title:   fmt.Sprintf("%s: Achieved MLL on %s (ms)", fig, netLabel(multi)),
		Columns: []string{"Workload", "HPROF", "PROF2", "HTOP", "TOP2", "PROF", "TOP"},
	}
	order := []core.Approach{core.HPROF, core.PROF2, core.HTOP, core.TOP2, core.PROF, core.TOP}
	for _, ev := range evals {
		row := []string{ev.Workload.String()}
		for _, a := range order {
			row = append(row, f3(ev.RowFor(a).MLL.Millis()))
		}
		t.AddRow(row...)
	}
	return t
}

// ImbalanceTable regenerates Figure 8 / Figure 12: normalized load
// imbalance per approach.
func ImbalanceTable(evals []*Eval, multi bool) *Table {
	fig := "Figure 8"
	if multi {
		fig = "Figure 12"
	}
	t := &Table{
		Title:   fmt.Sprintf("%s: Load Imbalance on %s (normalized std dev)", fig, netLabel(multi)),
		Columns: []string{"Workload", "HPROF", "PROF2", "HTOP", "TOP2"},
	}
	for _, ev := range evals {
		row := []string{ev.Workload.String()}
		for _, a := range SimulatedApproaches {
			row = append(row, f3(ev.RowFor(a).Report.Imbalance))
		}
		t.AddRow(row...)
	}
	return t
}

// EfficiencyTable regenerates Figure 9 / Figure 13: parallel efficiency.
func EfficiencyTable(evals []*Eval, multi bool) *Table {
	fig := "Figure 9"
	if multi {
		fig = "Figure 13"
	}
	t := &Table{
		Title:   fmt.Sprintf("%s: Parallel Efficiency on %s", fig, netLabel(multi)),
		Columns: []string{"Workload", "HPROF", "PROF2", "HTOP", "TOP2"},
	}
	for _, ev := range evals {
		row := []string{ev.Workload.String()}
		for _, a := range SimulatedApproaches {
			row = append(row, f3(ev.RowFor(a).Report.Efficiency))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig5Table regenerates Figure 5: the synchronization cost of the modeled
// TeraGrid cluster by engine-node count.
func Fig5Table(m cluster.SyncCostModel) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 5: Synchronization Cost (%s)", m.Name()),
		Columns: []string{"Nodes", "Cost (µs)"},
	}
	nodes, cost := cluster.Fig5Points(m)
	for i := range nodes {
		t.AddRow(fmt.Sprintf("%d", nodes[i]), fmt.Sprintf("%.0f", cost[i]))
	}
	return t
}

// Fig3Table regenerates Figure 3: load variation over the lifetime of the
// simulation — per time bucket, the min/mean/max engine event counts (the
// paper plots every node's curve; min/mean/max summarizes the spread in
// text form).
func Fig3Table(out *RunOutcome) *Table {
	t := &Table{
		Title:   "Figure 3: Load Variation over the Lifetime of Simulation (events per engine per bucket)",
		Columns: []string{"t (s)", "min", "mean", "max"},
	}
	// Subsample long series to ≤ 40 printed rows.
	stride := (len(out.Result.LoadSeries) + 39) / 40
	if stride < 1 {
		stride = 1
	}
	for b, loads := range out.Result.LoadSeries {
		if len(loads) == 0 || b%stride != 0 {
			continue
		}
		min, max, sum := loads[0], loads[0], uint64(0)
		for _, v := range loads {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		at := float64(b) * out.Result.BucketWidth.Seconds()
		t.AddRow(f2(at), fmt.Sprintf("%d", min), fmt.Sprintf("%d", sum/uint64(len(loads))), fmt.Sprintf("%d", max))
	}
	return t
}

// Headline summarizes the paper's headline claims from a pair of evals:
// HPROF improves load imbalance (vs HTOP) and reduces simulation time (vs
// TOP2), and reaches the stated parallel efficiency.
type Headline struct {
	Workload           Workload
	ImbalanceImprove   float64 // HPROF vs HTOP (paper: ≈31–40% multi-AS)
	SimTimeReduction   float64 // HPROF vs TOP2 (paper: ≈40–50%)
	ProfVsTopImbalance float64 // PROF2 vs TOP2 (paper: 7% single-AS, 15% multi-AS)
	HPROFEfficiency    float64 // paper: ≈0.40
	EfficiencyGain     float64 // HPROF vs TOP2 PE (paper: ≈64%)
}

// Headlines derives the claims for each workload.
func Headlines(evals []*Eval) []Headline {
	var out []Headline
	for _, ev := range evals {
		hprof := ev.RowFor(core.HPROF).Report
		htop := ev.RowFor(core.HTOP).Report
		top2 := ev.RowFor(core.TOP2).Report
		prof2 := ev.RowFor(core.PROF2).Report
		out = append(out, Headline{
			Workload:           ev.Workload,
			ImbalanceImprove:   metrics.Improvement(htop.Imbalance, hprof.Imbalance),
			SimTimeReduction:   metrics.Improvement(top2.SimTimeSec, hprof.SimTimeSec),
			ProfVsTopImbalance: metrics.Improvement(top2.Imbalance, prof2.Imbalance),
			HPROFEfficiency:    hprof.Efficiency,
			EfficiencyGain:     metrics.Improvement(1/hprof.Efficiency, 1/top2.Efficiency) * -1,
		})
	}
	return out
}

// HeadlineTable renders the headline claims.
func HeadlineTable(evals []*Eval, multi bool) *Table {
	t := &Table{
		Title: fmt.Sprintf("Headline claims on %s (paper: −40%% imbalance, −50%% sim time, PE ≈ 0.40)",
			netLabel(multi)),
		Columns: []string{"Workload", "Imbalance HPROF<HTOP", "SimTime HPROF<TOP2", "Imb PROF2<TOP2", "PE(HPROF)"},
	}
	for _, h := range Headlines(evals) {
		t.AddRow(h.Workload.String(),
			fmt.Sprintf("%.0f%%", h.ImbalanceImprove*100),
			fmt.Sprintf("%.0f%%", h.SimTimeReduction*100),
			fmt.Sprintf("%.0f%%", h.ProfVsTopImbalance*100),
			f3(h.HPROFEfficiency))
	}
	return t
}
