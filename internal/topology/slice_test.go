package topology_test

import (
	"testing"

	"massf/internal/core"
	"massf/internal/model"
	"massf/internal/topology"
)

// TestSliceBoundaryProperty is the partition-adjacent loading property: for
// seeded topologies and k ∈ {2,4,8}, a slice plus its boundary descriptor
// reconstructs exactly the links any owned node can reach in one hop.
func TestSliceBoundaryProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1001} {
		for _, k := range []int{2, 4, 8} {
			net, err := topology.GenerateFlat(topology.FlatOptions{
				Routers: 240, Hosts: 80, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			m, err := core.Map(net, core.TOP, core.Config{Engines: k, Seed: seed}, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Slice per engine, and per contiguous 2-engine worker range,
			// mirroring how dist workers host engine spans.
			spans := make([][2]int, 0, k+k/2)
			for e := 0; e < k; e++ {
				spans = append(spans, [2]int{e, 1})
			}
			for e := 0; e+2 <= k; e += 2 {
				spans = append(spans, [2]int{e, 2})
			}
			for _, span := range spans {
				sl, err := topology.BuildSlice(net, m.Part, span[0], span[1])
				if err != nil {
					t.Fatalf("seed %d k %d span %v: %v", seed, k, span, err)
				}
				if err := sl.Verify(net, m.Part); err != nil {
					t.Fatalf("seed %d k %d span %v: %v", seed, k, span, err)
				}
				checkOneHop(t, net, sl)
			}
			checkCover(t, net, m.Part, k)
		}
	}
}

// checkOneHop independently reconstructs, per owned node, its one-hop link
// set from Internal ∪ Boundary and compares against the network adjacency.
func checkOneHop(t *testing.T, net *model.Network, sl *topology.Slice) {
	t.Helper()
	fromSlice := make(map[model.NodeID]map[model.LinkID]bool)
	add := func(n model.NodeID, l model.LinkID) {
		if !sl.Owned[n] {
			return
		}
		if fromSlice[n] == nil {
			fromSlice[n] = make(map[model.LinkID]bool)
		}
		fromSlice[n][l] = true
	}
	for _, lid := range sl.Internal {
		l := &net.Links[lid]
		add(l.A, lid)
		add(l.B, lid)
	}
	for _, b := range sl.Boundary {
		add(b.Inside, b.Link)
	}
	for i := range net.Nodes {
		n := model.NodeID(i)
		if !sl.Owned[n] {
			if len(fromSlice[n]) != 0 {
				t.Fatalf("non-owned node %d has slice links", n)
			}
			continue
		}
		want := net.Incident(n)
		got := fromSlice[n]
		if len(got) != len(want) {
			t.Fatalf("node %d: slice reconstructs %d one-hop links, adjacency has %d", n, len(got), len(want))
		}
		for _, lid := range want {
			if !got[lid] {
				t.Fatalf("node %d: one-hop link %d missing from slice", n, lid)
			}
		}
	}
}

// checkCover verifies per-engine slices tile the network: every node owned
// by exactly one slice, every link internal to exactly one slice or on the
// boundary of exactly two.
func checkCover(t *testing.T, net *model.Network, part []int32, k int) {
	t.Helper()
	nodeOwners := make([]int, len(net.Nodes))
	internal := make([]int, len(net.Links))
	boundary := make([]int, len(net.Links))
	for e := 0; e < k; e++ {
		sl, err := topology.BuildSlice(net, part, e, 1)
		if err != nil {
			t.Fatal(err)
		}
		for n, owned := range sl.Owned {
			if owned {
				nodeOwners[n]++
			}
		}
		for _, lid := range sl.Internal {
			internal[lid]++
		}
		for _, b := range sl.Boundary {
			boundary[b.Link]++
		}
	}
	for n, c := range nodeOwners {
		if c != 1 {
			t.Fatalf("node %d owned by %d slices", n, c)
		}
	}
	for lid := range net.Links {
		if internal[lid] == 1 && boundary[lid] == 0 {
			continue
		}
		if internal[lid] == 0 && boundary[lid] == 2 {
			continue
		}
		t.Fatalf("link %d: internal in %d slices, boundary in %d", lid, internal[lid], boundary[lid])
	}
}
