// Slice-local topology: given a node→engine partition and the contiguous
// engine range one distributed worker hosts, compute which nodes the worker
// owns and a compact descriptor of the boundary — the links that cross from
// an owned node to a node simulated elsewhere. A worker materializes
// routing tables, host/flow state, and vcpu arrays only for owned nodes;
// the boundary descriptor is everything it needs to know about the rest of
// the network's edge (packets crossing it travel over internal/wire).

package topology

import (
	"fmt"

	"massf/internal/model"
)

// BoundaryLink is one link crossing the slice edge: Inside is the owned
// endpoint, Outside the endpoint simulated by another worker.
type BoundaryLink struct {
	Link          model.LinkID `json:"link"`
	Inside        model.NodeID `json:"inside"`
	Outside       model.NodeID `json:"outside"`
	OutsideEngine int32        `json:"outside_engine"`
}

// Slice describes the sub-network one worker materializes: the owned node
// set, the links wholly inside it, and the boundary descriptor.
type Slice struct {
	// First and Hosted delimit the contiguous engine range [First,
	// First+Hosted) this slice covers.
	First, Hosted int
	// Owned marks nodes mapped to a hosted engine (full-length over
	// net.Nodes).
	Owned []bool
	// OwnedNodes counts true entries in Owned.
	OwnedNodes int
	// Internal lists links with both endpoints owned.
	Internal []model.LinkID
	// Boundary lists links with exactly one endpoint owned, sorted by
	// link id.
	Boundary []BoundaryLink
}

// BuildSlice computes the slice of net that a worker hosting engines
// [first, first+hosted) of the given node→engine partition materializes.
// A nil part means everything maps to engine 0 (the sequential case).
func BuildSlice(net *model.Network, part []int32, first, hosted int) (*Slice, error) {
	if hosted <= 0 {
		return nil, fmt.Errorf("topology: slice needs hosted ≥ 1, got %d", hosted)
	}
	if part != nil && len(part) != len(net.Nodes) {
		return nil, fmt.Errorf("topology: partition length %d ≠ %d nodes", len(part), len(net.Nodes))
	}
	engineOf := func(n model.NodeID) int32 {
		if part == nil {
			return 0
		}
		return part[n]
	}
	s := &Slice{
		First:  first,
		Hosted: hosted,
		Owned:  make([]bool, len(net.Nodes)),
	}
	lo, hi := int32(first), int32(first+hosted)
	for i := range net.Nodes {
		e := engineOf(model.NodeID(i))
		if e >= lo && e < hi {
			s.Owned[i] = true
			s.OwnedNodes++
		}
	}
	for i := range net.Links {
		l := &net.Links[i]
		a, b := s.Owned[l.A], s.Owned[l.B]
		switch {
		case a && b:
			s.Internal = append(s.Internal, l.ID)
		case a:
			s.Boundary = append(s.Boundary, BoundaryLink{
				Link: l.ID, Inside: l.A, Outside: l.B, OutsideEngine: engineOf(l.B),
			})
		case b:
			s.Boundary = append(s.Boundary, BoundaryLink{
				Link: l.ID, Inside: l.B, Outside: l.A, OutsideEngine: engineOf(l.A),
			})
		}
	}
	return s, nil
}

// Verify checks the slice invariant against net: the internal links plus
// the boundary descriptor reconstruct exactly the set of links any owned
// node can reach in one hop (its incident links), with boundary sides and
// engines consistent with part. This is the property the sharded build
// depends on — a link missing here is a packet a sliced worker would
// silently never forward.
func (s *Slice) Verify(net *model.Network, part []int32) error {
	if len(s.Owned) != len(net.Nodes) {
		return fmt.Errorf("slice: Owned length %d ≠ %d nodes", len(s.Owned), len(net.Nodes))
	}
	have := make(map[model.LinkID]bool, len(s.Internal)+len(s.Boundary))
	for _, lid := range s.Internal {
		l := &net.Links[lid]
		if !s.Owned[l.A] || !s.Owned[l.B] {
			return fmt.Errorf("slice: internal link %d has a non-owned endpoint", lid)
		}
		have[lid] = true
	}
	for _, b := range s.Boundary {
		l := &net.Links[b.Link]
		if l.Other(b.Inside) != b.Outside {
			return fmt.Errorf("slice: boundary link %d endpoints %d–%d don't match descriptor %d–%d",
				b.Link, l.A, l.B, b.Inside, b.Outside)
		}
		if !s.Owned[b.Inside] || s.Owned[b.Outside] {
			return fmt.Errorf("slice: boundary link %d sides inverted", b.Link)
		}
		if part != nil && part[b.Outside] != b.OutsideEngine {
			return fmt.Errorf("slice: boundary link %d outside engine %d ≠ partition's %d",
				b.Link, b.OutsideEngine, part[b.Outside])
		}
		if have[b.Link] {
			return fmt.Errorf("slice: link %d listed twice", b.Link)
		}
		have[b.Link] = true
	}
	// Exactness: every link incident to an owned node is listed, and
	// nothing else is.
	want := 0
	for i := range net.Links {
		l := &net.Links[i]
		if s.Owned[l.A] || s.Owned[l.B] {
			want++
			if !have[l.ID] {
				return fmt.Errorf("slice: link %d incident to an owned node is missing", l.ID)
			}
		}
	}
	if len(have) != want {
		return fmt.Errorf("slice: %d links listed, %d incident to owned nodes", len(have), want)
	}
	return nil
}
