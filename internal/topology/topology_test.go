package topology

import (
	"testing"
	"testing/quick"

	"massf/internal/model"
)

func gen(t *testing.T, opts FlatOptions) *model.Network {
	t.Helper()
	net, err := GenerateFlat(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("generated network invalid: %v", err)
	}
	return net
}

func TestGenerateFlatCounts(t *testing.T) {
	net := gen(t, FlatOptions{Routers: 500, Hosts: 120, Seed: 1})
	if got := net.NumRouters(); got != 500 {
		t.Errorf("routers = %d, want 500", got)
	}
	if got := net.NumHosts(); got != 120 {
		t.Errorf("hosts = %d, want 120", got)
	}
	if len(net.ASes) != 1 {
		t.Fatalf("ASes = %d, want 1", len(net.ASes))
	}
	if len(net.ASes[0].Routers) != 500 || len(net.ASes[0].Hosts) != 120 {
		t.Error("AS membership lists wrong")
	}
}

func TestGenerateFlatRejectsTiny(t *testing.T) {
	if _, err := GenerateFlat(FlatOptions{Routers: 1}); err == nil {
		t.Fatal("1-router network accepted")
	}
}

func TestGenerateFlatConnected(t *testing.T) {
	net := gen(t, FlatOptions{Routers: 300, Hosts: 50, Seed: 2})
	// BFS over all nodes (hosts hang off routers).
	seen := make([]bool, len(net.Nodes))
	stack := []model.NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range net.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if count != len(net.Nodes) {
		t.Fatalf("connected component has %d of %d nodes", count, len(net.Nodes))
	}
}

func TestGenerateFlatDeterministic(t *testing.T) {
	a := gen(t, FlatOptions{Routers: 200, Hosts: 20, Seed: 7})
	b := gen(t, FlatOptions{Routers: 200, Hosts: 20, Seed: 7})
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed, different link counts")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("same seed, different link %d", i)
		}
	}
}

func TestGenerateFlatPowerLawish(t *testing.T) {
	net := gen(t, FlatOptions{Routers: 2000, Hosts: 0, Seed: 3})
	hist := DegreeHistogram(net)
	// Power-law signature: many low-degree nodes, a thin high-degree tail.
	low, high := 0, 0
	maxDeg := 0
	for d, c := range hist {
		if d <= 3 {
			low += c
		}
		if d >= 20 {
			high += c
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	if low < 1200 {
		t.Errorf("only %d routers with degree ≤ 3; expected a heavy low-degree mass", low)
	}
	if maxDeg < 20 {
		t.Errorf("max degree %d; expected a hub tail ≥ 20", maxDeg)
	}
	if high > 100 {
		t.Errorf("%d routers with degree ≥ 20; tail should be thin", high)
	}
}

func TestGenerateFlatLatencyStructure(t *testing.T) {
	// The generator must produce both sub-millisecond (intra-city) and
	// multi-millisecond (backbone) links — the spread that makes MLL
	// control meaningful.
	net := gen(t, FlatOptions{Routers: 2000, Hosts: 0, Seed: 4})
	subMS, multiMS := 0, 0
	for i := range net.Links {
		switch lat := net.Links[i].Latency; {
		case lat < 1_000_000:
			subMS++
		case lat > 4_000_000:
			multiMS++
		}
	}
	if subMS < 100 {
		t.Errorf("only %d sub-ms links; city clustering broken", subMS)
	}
	if multiMS < 100 {
		t.Errorf("only %d >4ms links; backbone spans missing", multiMS)
	}
}

func TestGenerateFlatHostLinks(t *testing.T) {
	net := gen(t, FlatOptions{Routers: 100, Hosts: 40, Seed: 5})
	for i := range net.Links {
		l := &net.Links[i]
		aHost := net.Nodes[l.A].Kind == model.Host
		bHost := net.Nodes[l.B].Kind == model.Host
		if aHost && bHost {
			t.Fatal("host-to-host link generated")
		}
		if aHost || bHost {
			if l.Bandwidth != model.Bps100M {
				t.Errorf("access link bandwidth %d, want 100M", l.Bandwidth)
			}
			if deg := len(net.Incident(l.A)); aHost && deg != 1 {
				t.Errorf("host %d has degree %d, want 1", l.A, deg)
			}
		}
	}
}

func TestBackboneUpgrade(t *testing.T) {
	net := gen(t, FlatOptions{Routers: 2000, Hosts: 0, Seed: 6})
	upgraded := 0
	for i := range net.Links {
		if net.Links[i].Bandwidth == model.Bps10G {
			upgraded++
		}
	}
	if upgraded == 0 {
		t.Error("no backbone links upgraded to 10G")
	}
	if upgraded > len(net.Links)/2 {
		t.Errorf("%d of %d links upgraded; backbone should be a minority", upgraded, len(net.Links))
	}
}

func TestPickCityCoversAll(t *testing.T) {
	// Over many draws every city must be reachable (the +1 smoothing).
	hist := DegreeHistogram(&model.Network{}) // exercise empty-net path
	if len(hist) != 0 {
		t.Error("empty network histogram not empty")
	}
}

func TestDegreePercentile(t *testing.T) {
	deg := []int{1, 1, 1, 1, 1, 1, 1, 1, 5, 9}
	if got := degreePercentile(deg, 0.9); got != 9 {
		t.Errorf("p90 = %d, want 9", got)
	}
	if got := degreePercentile(deg, 0.0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := degreePercentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
}

// Property: all generated latencies are positive and bounded by the plane
// diagonal; all bandwidths are one of the defined tiers.
func TestQuickLinkSanity(t *testing.T) {
	diag := model.LatencyForDistance(model.PlaneMiles * 1.4143)
	f := func(seed int64) bool {
		net, err := GenerateFlat(FlatOptions{Routers: 150, Hosts: 30, Seed: seed})
		if err != nil {
			return false
		}
		for i := range net.Links {
			l := &net.Links[i]
			if l.Latency <= 0 || l.Latency > diag {
				return false
			}
			switch l.Bandwidth {
			case model.Bps100M, model.Bps1G, model.Bps10G:
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateFlat20k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateFlat(FlatOptions{Routers: 20000, Hosts: 10000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
