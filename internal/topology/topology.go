// Package topology generates single-AS router-level network topologies in
// the style of the (adapted) BRITE generator the paper uses: degree-based
// preferential attachment following the power law, with routers placed on a
// geographic plane so that link latencies derive from physical distance.
//
// Routers cluster into "cities" (points of presence): city sizes themselves
// follow a rich-get-richer distribution, and intra-city links have
// sub-millisecond latencies while inter-city backbone links run tens of
// milliseconds. This latency structure is what makes the paper's Minimum
// Link Latency problem real: a partitioner that ignores latency will cut
// cheap intra-city edges and destroy parallelism (Section 3.4.1).
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"massf/internal/model"
)

// FlatOptions configures GenerateFlat.
type FlatOptions struct {
	// Routers is the number of routers. Paper scale: 20,000.
	Routers int
	// Hosts is the number of end hosts attached to routers. Paper: 10,000.
	Hosts int
	// EdgesPerNode is the number of links each new router adds
	// (preferential attachment m). Default 2.
	EdgesPerNode int
	// Cities is the number of geographic clusters. Default Routers/100
	// (min 4).
	Cities int
	// CityRadiusMiles is the standard deviation of router placement around
	// its city center (metro + suburban POP spread). Default 60.
	CityRadiusMiles float64
	// LocalityMiles is the e-folding distance of the locality bias: when a
	// new router picks neighbors, a candidate at distance d is weighted by
	// exp(-d/LocalityMiles). Default 600.
	LocalityMiles float64
	// PlaneMiles is the side length of the square plane. Default
	// model.PlaneMiles (5000).
	PlaneMiles float64
	// Seed makes generation deterministic.
	Seed int64
}

func (o *FlatOptions) setDefaults() {
	if o.EdgesPerNode <= 0 {
		o.EdgesPerNode = 2
	}
	if o.Cities <= 0 {
		// Enough cities that a partitioner has many contractible units to
		// work with (the paper's POP structure: hundreds of metro areas
		// for a Tier-1's 20,000 routers).
		o.Cities = o.Routers / 25
		if o.Cities < 6 {
			o.Cities = 6
		}
	}
	if o.CityRadiusMiles <= 0 {
		o.CityRadiusMiles = 60
	}
	if o.LocalityMiles <= 0 {
		o.LocalityMiles = 600
	}
	if o.PlaneMiles <= 0 {
		o.PlaneMiles = model.PlaneMiles
	}
}

// GenerateFlat builds a single-AS network of opts.Routers routers and
// opts.Hosts hosts. The result always forms a single connected component and
// a single AS with id 0.
func GenerateFlat(opts FlatOptions) (*model.Network, error) {
	if opts.Routers < 2 {
		return nil, fmt.Errorf("topology: need ≥ 2 routers, got %d", opts.Routers)
	}
	opts.setDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	net := &model.Network{}

	centers := cityCenters(opts.Cities, opts.PlaneMiles, rng)
	citySize := make([]int, opts.Cities)

	// Place routers: city chosen rich-get-richer so city sizes follow a
	// heavy-tailed distribution like real metro areas.
	routerCity := make([]int, opts.Routers)
	for i := 0; i < opts.Routers; i++ {
		c := pickCity(citySize, i, rng)
		citySize[c]++
		routerCity[i] = c
		x := clamp(centers[c][0]+rng.NormFloat64()*opts.CityRadiusMiles, 0, opts.PlaneMiles)
		y := clamp(centers[c][1]+rng.NormFloat64()*opts.CityRadiusMiles, 0, opts.PlaneMiles)
		net.AddNode(model.Router, 0, x, y)
	}

	// Preferential attachment with locality bias.
	degree := make([]int, opts.Routers)
	targets := make([]int32, 0, 2*opts.Routers*opts.EdgesPerNode)
	addEdge := func(u, v int) {
		lat := model.LatencyForDistance(net.Distance(model.NodeID(u), model.NodeID(v)))
		net.AddLink(model.NodeID(u), model.NodeID(v), lat, model.Bps1G)
		degree[u]++
		degree[v]++
		targets = append(targets, int32(u), int32(v))
	}
	addEdge(0, 1)
	for i := 2; i < opts.Routers; i++ {
		m := opts.EdgesPerNode
		if m > i {
			m = i
		}
		chosen := map[int32]bool{}
		for e := 0; e < m; e++ {
			best := int32(-1)
			bestScore := -1.0
			// Sample degree-biased candidates, keep the locality-weighted
			// best. More samples → stronger locality preference.
			for s := 0; s < 8; s++ {
				cand := targets[rng.Intn(len(targets))]
				if chosen[cand] || int(cand) == i {
					continue
				}
				d := net.Distance(model.NodeID(i), model.NodeID(cand))
				score := math.Exp(-d / opts.LocalityMiles)
				if score > bestScore {
					best, bestScore = cand, score
				}
			}
			if best < 0 {
				// Degenerate fallback: any unchosen earlier node.
				for v := 0; v < i; v++ {
					if !chosen[int32(v)] {
						best = int32(v)
						break
					}
				}
			}
			if best < 0 {
				break
			}
			chosen[best] = true
			addEdge(i, int(best))
		}
	}

	// Upgrade backbone links: both endpoints in the top degree decile.
	threshold := degreePercentile(degree, 0.9)
	for li := range net.Links {
		l := &net.Links[li]
		if degree[l.A] >= threshold && degree[l.B] >= threshold {
			l.Bandwidth = model.Bps10G
		}
	}

	// Attach hosts: each host picks a random router and sits within a few
	// miles of it (access links are short and slow).
	as := model.AS{ID: 0, DefaultBorder: -1}
	for i := 0; i < opts.Routers; i++ {
		as.Routers = append(as.Routers, model.NodeID(i))
	}
	for h := 0; h < opts.Hosts; h++ {
		r := model.NodeID(rng.Intn(opts.Routers))
		x := clamp(net.Nodes[r].X+rng.NormFloat64()*2, 0, opts.PlaneMiles)
		y := clamp(net.Nodes[r].Y+rng.NormFloat64()*2, 0, opts.PlaneMiles)
		hid := net.AddNode(model.Host, 0, x, y)
		lat := model.LatencyForDistance(net.Distance(hid, r))
		net.AddLink(hid, r, lat, model.Bps100M)
		as.Hosts = append(as.Hosts, hid)
	}
	net.ASes = []model.AS{as}
	return net, nil
}

// cityCenters spreads n city centers over the plane with a margin so
// Gaussian scatter rarely clips.
func cityCenters(n int, plane float64, rng *rand.Rand) [][2]float64 {
	centers := make([][2]float64, n)
	margin := plane * 0.05
	for i := range centers {
		centers[i] = [2]float64{
			margin + rng.Float64()*(plane-2*margin),
			margin + rng.Float64()*(plane-2*margin),
		}
	}
	return centers
}

// pickCity chooses a city index with probability proportional to
// size+1 — a rich-get-richer process producing heavy-tailed city sizes.
func pickCity(size []int, placed int, rng *rand.Rand) int {
	total := placed + len(size)
	r := rng.Intn(total)
	for c, s := range size {
		r -= s + 1
		if r < 0 {
			return c
		}
	}
	return len(size) - 1
}

// degreePercentile returns the degree value at the given percentile.
func degreePercentile(degree []int, p float64) int {
	if len(degree) == 0 {
		return 0
	}
	sorted := append([]int(nil), degree...)
	// Counting into a histogram avoids pulling in sort for hot paths.
	maxDeg := 0
	for _, d := range sorted {
		if d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for _, d := range sorted {
		hist[d]++
	}
	rank := int(p * float64(len(sorted)))
	cum := 0
	for d, c := range hist {
		cum += c
		if cum > rank {
			return d
		}
	}
	return maxDeg
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DegreeHistogram returns counts of router degrees, used to check the
// power-law shape in tests and docs.
func DegreeHistogram(net *model.Network) map[int]int {
	deg := map[model.NodeID]int{}
	for i := range net.Links {
		l := &net.Links[i]
		if net.Nodes[l.A].Kind == model.Router && net.Nodes[l.B].Kind == model.Router {
			deg[l.A]++
			deg[l.B]++
		}
	}
	hist := map[int]int{}
	for i := range net.Nodes {
		if net.Nodes[i].Kind == model.Router {
			hist[deg[model.NodeID(i)]]++
		}
	}
	return hist
}
