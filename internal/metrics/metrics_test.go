package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"massf/internal/des"
	"massf/internal/pdes"
)

func TestLoadImbalancePerfect(t *testing.T) {
	if got := LoadImbalance([]uint64{100, 100, 100, 100}); got != 0 {
		t.Errorf("uniform load imbalance = %v, want 0", got)
	}
}

func TestLoadImbalanceKnownValue(t *testing.T) {
	// {0, 200}: mean 100, stddev 100 → CV = 1.
	if got := LoadImbalance([]uint64{0, 200}); math.Abs(got-1) > 1e-12 {
		t.Errorf("imbalance = %v, want 1", got)
	}
}

func TestLoadImbalanceEdgeCases(t *testing.T) {
	if LoadImbalance(nil) != 0 {
		t.Error("nil slice should be 0")
	}
	if LoadImbalance([]uint64{0, 0, 0}) != 0 {
		t.Error("all-zero load should be 0")
	}
	if LoadImbalance([]uint64{42}) != 0 {
		t.Error("single engine should be 0")
	}
}

func TestLoadImbalanceOrdering(t *testing.T) {
	balanced := LoadImbalance([]uint64{90, 100, 110, 100})
	skewed := LoadImbalance([]uint64{10, 100, 290, 0})
	if balanced >= skewed {
		t.Errorf("balanced %v not below skewed %v", balanced, skewed)
	}
}

func TestParallelEfficiencyIdeal(t *testing.T) {
	// 1000 events at 10µs each = 10ms sequential. 10 engines finishing in
	// exactly 1ms → PE = 1.
	pe := ParallelEfficiency(1000, 10*des.Microsecond, 10, int64(des.Millisecond))
	if math.Abs(pe-1) > 1e-12 {
		t.Errorf("ideal PE = %v, want 1", pe)
	}
}

func TestParallelEfficiencyWithOverhead(t *testing.T) {
	// Same work but 2.5ms parallel time → PE = 0.4 (the paper's headline).
	pe := ParallelEfficiency(1000, 10*des.Microsecond, 10, int64(2500*des.Microsecond))
	if math.Abs(pe-0.4) > 1e-12 {
		t.Errorf("PE = %v, want 0.4", pe)
	}
}

func TestParallelEfficiencyDegenerate(t *testing.T) {
	if ParallelEfficiency(10, des.Microsecond, 0, 100) != 0 {
		t.Error("0 engines should give 0")
	}
	if ParallelEfficiency(10, des.Microsecond, 4, 0) != 0 {
		t.Error("0 time should give 0")
	}
}

func TestFromStats(t *testing.T) {
	st := pdes.Stats{
		Engines:       4,
		Window:        2 * des.Millisecond,
		TotalEvents:   4000,
		EngineEvents:  []uint64{1000, 1000, 1000, 1000},
		ModeledTimeNS: int64(40 * des.Millisecond),
	}
	r := FromStats("HPROF", st, 10*des.Microsecond)
	if r.Approach != "HPROF" {
		t.Error("approach not propagated")
	}
	if r.AchievedMLLms != 2.0 {
		t.Errorf("MLL = %v ms, want 2", r.AchievedMLLms)
	}
	if r.Imbalance != 0 {
		t.Errorf("imbalance = %v, want 0", r.Imbalance)
	}
	// Tseq = 4000 × 10µs = 40ms; PE = 40ms/(4×40ms) = 0.25.
	if math.Abs(r.Efficiency-0.25) > 1e-12 {
		t.Errorf("PE = %v, want 0.25", r.Efficiency)
	}
	if r.SimTimeSec != 0.04 {
		t.Errorf("SimTimeSec = %v, want 0.04", r.SimTimeSec)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 50); got != 0.5 {
		t.Errorf("Improvement = %v, want 0.5", got)
	}
	if got := Improvement(0, 50); got != 0 {
		t.Errorf("Improvement from 0 = %v, want 0", got)
	}
	if got := Improvement(50, 100); got != -1 {
		t.Errorf("regression = %v, want -1", got)
	}
}

// Property: imbalance is scale-invariant (multiplying all loads by a
// constant does not change it) and non-negative.
func TestQuickImbalanceScaleInvariant(t *testing.T) {
	f := func(loads []uint16, mul uint8) bool {
		if len(loads) == 0 {
			return true
		}
		m := uint64(mul%7) + 2
		a := make([]uint64, len(loads))
		b := make([]uint64, len(loads))
		for i, l := range loads {
			a[i] = uint64(l)
			b[i] = uint64(l) * m
		}
		ia, ib := LoadImbalance(a), LoadImbalance(b)
		return ia >= 0 && math.Abs(ia-ib) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: PE never exceeds 1 when parallel time ≥ the per-engine share
// of sequential work (no superlinear speedup in this model).
func TestQuickPEBounded(t *testing.T) {
	f := func(events uint32, engines uint8) bool {
		n := int(engines%16) + 1
		ev := uint64(events%100000) + 1
		cost := 10 * des.Microsecond
		minParallel := int64(float64(ev) * float64(cost) / float64(n))
		pe := ParallelEfficiency(ev, cost, n, minParallel+1)
		return pe <= 1.0000001 && pe > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParallelEfficiencyClamped(t *testing.T) {
	// Degenerate single-engine case: the modeled parallel time can
	// undershoot the Tseq estimate (no sync cost, no remote cost), which
	// would naively report PE > 1.
	events := uint64(1000)
	cost := 15 * des.Microsecond
	short := int64(events) * int64(cost) / 2 // "parallel" time half of Tseq
	if pe := ParallelEfficiency(events, cost, 1, short); pe != 1 {
		t.Errorf("PE = %v, want clamp to 1", pe)
	}
	// Exactly Tseq on one engine: PE = 1, no clamp needed.
	exact := int64(events) * int64(cost)
	if pe := ParallelEfficiency(events, cost, 1, exact); pe != 1 {
		t.Errorf("PE = %v, want exactly 1", pe)
	}
	// A realistic multi-engine run stays untouched.
	if pe := ParallelEfficiency(events, cost, 4, exact); pe != 0.25 {
		t.Errorf("PE = %v, want 0.25", pe)
	}
}

func TestFromStatsFlagsClampedPE(t *testing.T) {
	st := pdes.Stats{
		Engines:       1,
		Window:        des.Millisecond,
		TotalEvents:   1000,
		EngineEvents:  []uint64{1000},
		ModeledTimeNS: int64(1000) * int64(15*des.Microsecond) / 2,
	}
	rep := FromStats("RANDOM", st, 15*des.Microsecond)
	if rep.Efficiency != 1 || !rep.PEClamped {
		t.Errorf("Efficiency = %v, PEClamped = %v; want 1, true", rep.Efficiency, rep.PEClamped)
	}
	st.ModeledTimeNS = int64(1000) * int64(15*des.Microsecond) * 2
	rep = FromStats("RANDOM", st, 15*des.Microsecond)
	if rep.PEClamped {
		t.Error("PEClamped set on a sub-1 efficiency")
	}
	if rep.Efficiency != 0.5 {
		t.Errorf("Efficiency = %v, want 0.5", rep.Efficiency)
	}
}
