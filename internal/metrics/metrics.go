// Package metrics computes the paper's four evaluation metrics (Section
// 4.1): application simulation time, achieved minimum link latency, load
// imbalance, and parallel efficiency.
package metrics

import (
	"math"

	"massf/internal/des"
	"massf/internal/pdes"
)

// LoadImbalance is the paper's third metric: the normalized standard
// deviation (coefficient of variation) of the per-engine kernel event
// rates k1..kn. Zero means perfect balance.
func LoadImbalance(engineEvents []uint64) float64 {
	n := len(engineEvents)
	if n == 0 {
		return 0
	}
	var total float64
	for _, k := range engineEvents {
		total += float64(k)
	}
	mean := total / float64(n)
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, k := range engineEvents {
		d := float64(k) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(n)) / mean
}

// ParallelEfficiency is the paper's fourth metric:
//
//	PE(N, L) = Tseq(L) / (N · T(L, N))
//
// where T is the (modeled) parallel runtime and Tseq is estimated as
// TotalEventNumber / MaximalEventRateOnEachNode — with a per-event cost c,
// the maximal per-node event rate is 1/c, so Tseq = TotalEvents · c.
//
// By definition PE cannot exceed 1; the Tseq *estimate* can, though, when
// the modeled parallel time omits costs the estimate charges (the
// degenerate single-engine case: T excludes sync, yet remote costs are
// zero, so Tseq = N·T exactly only if EventCost matches). The result is
// therefore clamped to [0, 1]; use rawParallelEfficiency (via
// Report.PEClamped) to detect that the clamp engaged.
func ParallelEfficiency(totalEvents uint64, eventCost des.Time, engines int, parallelTimeNS int64) float64 {
	pe := rawParallelEfficiency(totalEvents, eventCost, engines, parallelTimeNS)
	if pe > 1 {
		return 1
	}
	return pe
}

// rawParallelEfficiency is the unclamped PE estimate.
func rawParallelEfficiency(totalEvents uint64, eventCost des.Time, engines int, parallelTimeNS int64) float64 {
	if parallelTimeNS <= 0 || engines <= 0 {
		return 0
	}
	tseq := float64(totalEvents) * float64(eventCost)
	return tseq / (float64(engines) * float64(parallelTimeNS))
}

// Report bundles the paper's metrics for one simulation run under one
// mapping approach.
// The JSON field names are snake_case, matching every other object on the
// daemon's API surface (Info, NetSummary).
type Report struct {
	// Approach names the mapping (TOP2, PROF2, HTOP, HPROF, …).
	Approach string `json:"approach"`
	// SimTimeSec is the modeled application simulation time T in seconds
	// (Figures 6 and 10).
	SimTimeSec float64 `json:"sim_time_sec"`
	// AchievedMLLms is the partition's achieved MLL in milliseconds
	// (Figures 7 and 11).
	AchievedMLLms float64 `json:"achieved_mll_ms"`
	// Imbalance is the normalized load imbalance (Figures 8 and 12).
	Imbalance float64 `json:"imbalance"`
	// Efficiency is PE(N, L) (Figures 9 and 13), clamped to [0, 1].
	Efficiency float64 `json:"efficiency"`
	// PEClamped flags that the raw efficiency estimate exceeded 1 and was
	// clamped — the Tseq estimate overshot the modeled parallel time
	// (typically the degenerate single-engine case, where no
	// synchronization or remote cost is charged).
	PEClamped bool `json:"pe_clamped,omitempty"`
	// WallSec is the real host wall-clock time of the run (informational;
	// the host is not a 90-node cluster).
	WallSec float64 `json:"wall_sec"`
	// TotalEvents and RemoteEvents describe the run's size.
	TotalEvents  uint64 `json:"total_events"`
	RemoteEvents uint64 `json:"remote_events"`
}

// FromStats assembles a Report from engine statistics.
func FromStats(approach string, st pdes.Stats, eventCost des.Time) Report {
	raw := rawParallelEfficiency(st.TotalEvents, eventCost, st.Engines, st.ModeledTimeNS)
	rep := Report{
		Approach:      approach,
		SimTimeSec:    float64(st.ModeledTimeNS) / 1e9,
		AchievedMLLms: st.Window.Millis(),
		Imbalance:     LoadImbalance(st.EngineEvents),
		Efficiency:    raw,
		WallSec:       st.WallTime.Seconds(),
		TotalEvents:   st.TotalEvents,
		RemoteEvents:  st.RemoteEvents,
	}
	if raw > 1 {
		rep.Efficiency = 1
		rep.PEClamped = true
	}
	return rep
}

// Improvement returns the relative improvement of b over a for a
// lower-is-better quantity, e.g. Improvement(timeTOP2, timeHPROF) = 0.4
// means HPROF is 40% faster.
func Improvement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}
