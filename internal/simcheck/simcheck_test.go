package simcheck

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/netsim"
	"massf/internal/pdes"
)

// TestScenarioGenerationDeterministic: the same seed always derives the
// same scenario — a failing seed is a complete reproducer.
func TestScenarioGenerationDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := NewScenario(seed), NewScenario(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %+v != %+v", seed, a, b)
		}
	}
}

// TestOraclePassesRandomScenarios runs the full oracle on a handful of
// generated scenarios (the CLI sweep covers ≥100; this keeps tier-1
// fast). Every parallel run must match the sequential reference byte for
// byte and record zero invariant violations.
func TestOraclePassesRandomScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep skipped in -short")
	}
	for seed := int64(1); seed <= 6; seed++ {
		sc := NewScenario(seed)
		rep, err := Check(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if rep.Ref.TotalEvents == 0 {
			t.Fatalf("%s: reference run executed no events", sc)
		}
		for i := range rep.Runs {
			kr := &rep.Runs[i]
			if len(kr.Violations) > 0 {
				t.Errorf("%s k=%d: %d invariant violation(s), first: %v",
					sc, kr.K, len(kr.Violations), kr.Violations[0])
			}
			if len(kr.Divergences) > 0 {
				t.Errorf("%s k=%d: %d divergence(s), first: %v",
					sc, kr.K, len(kr.Divergences), kr.Divergences[0])
			}
		}
	}
}

// TestDiffReportsEveryFieldClass: scalar, per-element, and time-valued
// differences are all reported, and time-valued ones carry the earliest
// attributable simulated time so DivergentWindow can locate them.
func TestDiffReportsEveryFieldClass(t *testing.T) {
	seq := &Observation{
		TotalEvents: 100, DeliveredBits: 8000,
		NodeEvents: []uint64{5, 6, 7},
		TCPDone:    []des.Time{10 * des.Millisecond, 20 * des.Millisecond},
	}
	par := &Observation{
		TotalEvents: 101, DeliveredBits: 8000,
		NodeEvents: []uint64{5, 9, 7},
		TCPDone:    []des.Time{10 * des.Millisecond, 26 * des.Millisecond},
	}
	ds := Diff(seq, par)
	byField := map[string]Divergence{}
	for _, d := range ds {
		byField[d.Field] = d
	}
	if len(ds) != 3 {
		t.Fatalf("got %d divergences %v, want 3", len(ds), ds)
	}
	if d := byField["TotalEvents"]; d.Index != -1 || d.Seq != "100" || d.Par != "101" {
		t.Errorf("TotalEvents divergence wrong: %+v", d)
	}
	if d := byField["NodeEvents"]; d.Index != 1 {
		t.Errorf("NodeEvents divergence at index %d, want 1", d.Index)
	}
	if d := byField["TCPDone"]; d.At != 20*des.Millisecond {
		t.Errorf("TCPDone divergence At = %v, want 20ms (earlier of the two)", d.At)
	}
	kr := KRun{Window: des.Millisecond, Divergences: ds}
	if w := kr.DivergentWindow(); w != 20 {
		t.Errorf("DivergentWindow = %d, want 20", w)
	}
	if ds := Diff(seq, seq); len(ds) != 0 {
		t.Errorf("self-diff produced %v", ds)
	}
}

// TestInjectedViolationReported: an intentionally injected lookahead
// violation inside a scenario's parallel run is detected and reported with
// the offending window, engine, and (at, src, seq) event triple — the
// end-to-end path the oracle relies on to turn causality bugs into
// reports instead of silent stat drift.
func TestInjectedViolationReported(t *testing.T) {
	sc := NewScenario(1)
	sc.HTTPClients, sc.HTTPServers = 0, 0
	net, routes, hosts, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Map(net, core.TOP2, core.Config{Engines: 4, Seed: sc.Seed}, nil)
	if err != nil {
		t.Fatal(err)
	}
	window := m.MLL
	if window > core.MaxMLL {
		window = core.MaxMLL
	}
	inv := &pdes.Invariants{}
	s, err := netsim.New(netsim.Config{
		Net: net, Routes: routes, Part: m.Part, Engines: 4,
		Window: window, End: 4 * window, Seed: sc.Seed, Invariants: inv,
	})
	if err != nil {
		t.Fatal(err)
	}
	// From a host's owning engine, inside window 0, ship an event to a
	// different engine timestamped before window 0 ends.
	srcEng := s.EngineOf(hosts[0])
	dstEng := (srcEng + 1) % 4
	injectAt := window / 4
	s.ScheduleAt(hosts[0], injectAt, func(now des.Time) {
		s.Engine(srcEng).InjectLookaheadViolation(dstEng, now+1, func(des.Time) {})
	})
	s.Run()
	vs := inv.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(vs), vs)
	}
	v := vs[0]
	if v.Kind != pdes.ViolationLookahead {
		t.Errorf("Kind = %v, want lookahead", v.Kind)
	}
	if v.Window != 0 || v.Engine != dstEng || v.Src != srcEng {
		t.Errorf("violation window=%d engine=%d src=%d, want 0/%d/%d",
			v.Window, v.Engine, v.Src, dstEng, srcEng)
	}
	if v.At != injectAt+1 || v.WindowEnd != window {
		t.Errorf("violation at=%v windowEnd=%v, want %v/%v", v.At, v.WindowEnd, injectAt+1, window)
	}
}

// TestShrinkFindsLocalMinimum drives the shrinker with a synthetic failure
// predicate and checks it reduces every reducible axis while preserving
// the failure.
func TestShrinkFindsLocalMinimum(t *testing.T) {
	sc := NewScenario(1) // flat, tcp=24 udp=14 http=3 horizon=456ms ks=[2 4 8]
	calls := 0
	fails := func(c Scenario) bool {
		calls++
		return c.UDPSends >= 4 && c.Horizon >= 100*des.Millisecond
	}
	min := Shrink(sc, fails, 200)
	if !fails(min) {
		t.Fatal("shrunk scenario no longer fails")
	}
	if len(min.Ks) != 1 {
		t.Errorf("Ks = %v, want a single engine count", min.Ks)
	}
	if min.UDPSends < 4 || min.UDPSends >= 8 {
		t.Errorf("UDPSends = %d, want minimal value in [4,8)", min.UDPSends)
	}
	if min.Horizon < 100*des.Millisecond || min.Horizon >= 200*des.Millisecond {
		t.Errorf("Horizon = %v, want minimal value in [100ms,200ms)", min.Horizon)
	}
	if min.TCPFlows != 0 || min.HTTPClients != 0 {
		t.Errorf("irrelevant axes not reduced: tcp=%d http=%d", min.TCPFlows, min.HTTPClients)
	}
	if calls > 201 {
		t.Errorf("predicate called %d times, budget was 200", calls)
	}
}

// TestTraceRunWritesChromeTrace: the flight-recorder dump for a (scenario,
// k) pair produces a parseable Chrome trace-event file with per-window
// events.
func TestTraceRunWritesChromeTrace(t *testing.T) {
	sc := NewScenario(1)
	sc.Ks = []int{2}
	sc.TCPFlows, sc.UDPSends = 4, 4
	sc.HTTPClients, sc.HTTPServers = 0, 0
	sc.Horizon = 100 * des.Millisecond
	var buf bytes.Buffer
	if err := TraceRun(sc, 2, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		Metadata    map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace contains no events")
	}
	if doc.Metadata["tool"] != "simcheck" || doc.Metadata["k"] != "2" {
		t.Errorf("trace metadata = %v", doc.Metadata)
	}
}

// TestShrinkRespectsBudget: a zero budget returns the scenario unchanged.
func TestShrinkRespectsBudget(t *testing.T) {
	sc := NewScenario(2)
	got := Shrink(sc, func(Scenario) bool { t.Fatal("predicate called"); return false }, 0)
	if !reflect.DeepEqual(got, sc) {
		t.Errorf("zero-budget shrink changed the scenario")
	}
}

// TestChurnEquivalence is the fault-plane conformance dimension: the same
// seeded fault script injected into the reference and every parallel run
// must leave all observables — including per-fault loss attribution —
// byte-identical across engine counts.
func TestChurnEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("churn oracle sweep skipped in -short")
	}
	churned := 0
	for seed := int64(1); seed <= 5; seed++ {
		sc := Churn(NewScenario(seed))
		rep, err := Check(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if len(rep.Ref.FaultDrops) > 0 {
			churned++
		}
		for i := range rep.Runs {
			kr := &rep.Runs[i]
			for _, v := range kr.Violations {
				t.Errorf("%s k=%d: violation %v", sc, kr.K, v)
			}
			for _, d := range kr.Divergences {
				t.Errorf("%s k=%d: divergence %v", sc, kr.K, d)
			}
		}
	}
	if churned == 0 {
		t.Error("no swept scenario actually compiled a fault plane")
	}
}

// TestChurnScenarioJSONRoundTrip: a churn scenario (and its materialized
// explicit-script form) survives the -scenario-json wire format.
func TestChurnScenarioJSONRoundTrip(t *testing.T) {
	sc := Churn(NewScenario(3))
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var got Scenario
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Fatalf("churn scenario round trip:\n got %+v\nwant %+v", got, sc)
	}
	mat, err := sc.Materialized()
	if err != nil {
		t.Fatal(err)
	}
	if mat.Faults == nil || mat.ChurnEvents != 0 {
		t.Fatalf("Materialized did not freeze the script: %+v", mat)
	}
	b, err = json.Marshal(mat)
	if err != nil {
		t.Fatal(err)
	}
	var got2 Scenario
	if err := json.Unmarshal(b, &got2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, mat) {
		t.Fatal("materialized scenario did not survive JSON")
	}
	// The frozen script must reproduce the seeded run exactly.
	if !testing.Short() {
		a, err := Check(sc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Check(mat)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Ref, b.Ref) {
			t.Fatal("materialized scenario observes differently than its seeded form")
		}
	}
}
