package simcheck

import (
	"fmt"
	"io"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/faults"
	"massf/internal/fluid"
	"massf/internal/model"
	"massf/internal/netmon"
	"massf/internal/netsim"
	"massf/internal/pdes"
	"massf/internal/profile"
	"massf/internal/routing/interdomain"
	"massf/internal/telemetry"
	"massf/internal/traffic"
)

// Observation is the partition-independent view of one simulation run —
// everything that must be byte-identical between the sequential reference
// and a parallel run of the same scenario. Partition-*dependent* outputs
// (ModeledTimeNS, per-engine event counts, window counts, queue depths)
// are deliberately excluded: they describe the execution, not the model.
type Observation struct {
	TotalEvents     uint64
	DeliveredBits   uint64
	Dropped         uint64
	Retransmissions uint64
	FlowsStarted    int
	FlowsCompleted  int
	LastCompletion  des.Time

	NodeEvents []uint64 // per router/host: kernel events attributed
	LinkBits   []uint64 // per link: carried bits
	LinkDrops  []uint64 // per link: tail drops
	FaultDrops []uint64 // per scripted fault: loss attributed (churn scenarios)

	TCPDone []des.Time // per scripted TCP flow: completion time (0 = never)
	TCPRecv []des.Time // per scripted TCP flow: full delivery at receiver
	UDPRecv []des.Time // per scripted UDP send: delivery time (0 = dropped)

	HTTPRequests  uint64
	HTTPResponses uint64

	// Fluid* mirror the hybrid run's flow-level counters (zero on pure
	// packet runs). Fluidized scripted-TCP completions land in TCPDone /
	// TCPRecv like their packet counterparts, so the per-flow merge and
	// diff machinery covers both fidelities with one code path.
	FluidStarted        int      `json:",omitempty"`
	FluidCompleted      int      `json:",omitempty"`
	FluidDeliveredBits  uint64   `json:",omitempty"`
	FluidLastCompletion des.Time `json:",omitempty"`
	FluidLinkBits       []uint64 `json:",omitempty"` // per link: fluid wire bits

	// PathSpans are the netmon-sampled packet-path spans of an
	// instrumented run (Scenario.NetSample > 0). They are OUTPUT of the
	// observability plane, not a model observable, so Diff ignores them;
	// MergeObservations concatenates worker partials so a distributed
	// run's cross-worker paths can be stitched and audited.
	PathSpans []netmon.HopSpan `json:",omitempty"`

	// Worker build accounting, set only on distributed worker partials:
	// how long this worker spent materializing the scenario, its post-run
	// live heap and process peak RSS, and the bytes of OSPF tables it holds.
	// These describe the EXECUTION, not the model, so Diff excludes them
	// and MergeObservations leaves them per-partial (DistReport collects
	// them as WorkerMem). Note the in-process loopback workers of
	// CheckDistributed share one heap, so HeapInuse/PeakRSS are only
	// per-worker-meaningful for real worker processes (massfd -worker);
	// BuildNS and RouteBytes are always per-worker.
	BuildNS    int64  `json:",omitempty"`
	HeapInuse  uint64 `json:",omitempty"`
	PeakRSS    uint64 `json:",omitempty"`
	RouteBytes int64  `json:",omitempty"`
	SliceNodes int    `json:",omitempty"` // owned nodes of a sliced build
}

// distRun configures runOnce as ONE WORKER of a distributed run: only
// engines [first, first+hosted) execute, synchronized through the
// transport. With slice false the Sim builds the full replicated scenario;
// with slice true it materializes only the hosted engines' share
// (netsim.Config.SliceBuild). The captured Observation is then a worker
// partial (see MergeObservations).
type distRun struct {
	transport     pdes.Transport
	first, hosted int
	slice         bool
}

// runOnce executes the scenario once on k engines under the given partition
// and window, and captures an Observation. part nil with k=1 is the
// sequential reference. inv, when non-nil, attaches the pdes runtime
// invariant hooks. dr, when non-nil, runs the scenario as one distributed
// worker. The netsim.Result is returned for profile capture.
func runOnce(net *netsimNet, sc Scenario, k int, part []int32, window des.Time, inv *pdes.Invariants, tel *telemetry.SimTelemetry, dr *distRun) (*Observation, *netsim.Result, error) {
	cfg := netsim.Config{
		Net: net.net, Routes: net.routes, Part: part, Engines: k,
		Window: window, End: sc.Horizon, Seed: sc.Seed,
		Invariants: inv, Telemetry: tel,
	}
	if net.plane != nil {
		cfg.Faults = net.plane
	}
	if net.fluid != nil {
		cfg.Fluid = net.fluid
	}
	if dr != nil {
		cfg.Transport = dr.transport
		cfg.FirstEngine = dr.first
		cfg.HostedEngines = dr.hosted
		cfg.SliceBuild = dr.slice
	}
	var mon *netmon.Mon
	if sc.NetSample > 0 {
		mon = netmon.New(netmon.Options{
			Links: len(net.net.Links), Horizon: sc.Horizon, SampleEvery: sc.NetSample,
		})
		cfg.NetMon = mon
	}
	s, err := netsim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	obs := &Observation{
		TCPDone: make([]des.Time, len(net.tcp)),
		TCPRecv: make([]des.Time, len(net.tcp)),
		UDPRecv: make([]des.Time, len(net.udp)),
	}
	for i := range net.tcp {
		if net.isFluid != nil && net.isFluid[i] {
			continue // modeled on the fluid plane; completion read post-run
		}
		i, f := i, net.tcp[i]
		s.StartFlowRecv(f.at, f.src, f.dst, f.bytes,
			func(at des.Time) { obs.TCPDone[i] = at },
			func(at des.Time) { obs.TCPRecv[i] = at })
	}
	for i := range net.udp {
		i, u := i, net.udp[i]
		s.SendUDP(u.at, u.src, u.dst, u.bytes,
			func(at des.Time) { obs.UDPRecv[i] = at })
	}
	var httpStats *traffic.HTTPStats
	if clients, servers := sc.httpEndpoints(net.hosts); len(clients) > 0 {
		httpStats = traffic.InstallHTTP(s, traffic.HTTPConfig{
			Clients: clients, Servers: servers,
			MeanGap: 30 * des.Millisecond, MeanFileBytes: 20_000,
			Seed: sc.Seed + 7,
		})
	}
	res := s.Run()
	if res.Err != nil {
		return nil, nil, res.Err
	}
	obs.TotalEvents = res.TotalEvents
	obs.DeliveredBits = res.DeliveredBits
	obs.Dropped = res.Dropped
	obs.Retransmissions = res.Retransmissions
	obs.FlowsStarted = res.FlowsStarted
	obs.FlowsCompleted = res.FlowsCompleted
	obs.LastCompletion = res.LastCompletion
	obs.NodeEvents = res.NodeEvents
	obs.LinkBits = res.LinkBits
	obs.LinkDrops = res.LinkDrops
	obs.FaultDrops = res.FaultDrops
	if httpStats != nil {
		obs.HTTPRequests = httpStats.TotalRequests()
		obs.HTTPResponses = httpStats.TotalResponses()
	}
	if net.fluid != nil {
		obs.FluidStarted = res.FluidStarted
		obs.FluidCompleted = res.FluidCompleted
		obs.FluidDeliveredBits = res.FluidDeliveredBits
		obs.FluidLastCompletion = res.FluidLastCompletion
		obs.FluidLinkBits = res.FluidLinkBits
		// FluidDone is hosted-filtered, so each scripted completion lands
		// on exactly one worker — the same contract packet TCPDone merges
		// rely on. Fluid transfers have no separate sender-done/receiver
		// -done distinction; the analytic completion fills both slots.
		for fi, ti := range net.fluidOf {
			if d := res.FluidDone[fi]; d != 0 {
				obs.TCPDone[ti], obs.TCPRecv[ti] = d, d
			}
		}
	}
	if mon != nil {
		obs.PathSpans = mon.Spans()
	}
	return obs, &res, nil
}

// netsimNet bundles a built scenario: network, warmed routes, hosts, the
// deterministic traffic script replayed into every run, the compiled
// fault plane (nil for churn-free scenarios), and — hybrid scenarios
// only — the precomputed fluid plane with the mapping from fluid flow
// index back to the scripted TCP entry it models.
type netsimNet struct {
	net     *model.Network
	routes  netsim.Routes
	hosts   []model.NodeID
	tcp     []tcpSpec
	udp     []udpSpec
	plane   *faults.Plane
	fluid   *fluid.Plane
	fluidOf []int  // fluid flow index → tcp script index
	isFluid []bool // tcp script index → modeled on the fluid plane
}

// buildBundle materializes a scenario into the bundle every run of it
// shares. Distributed workers call it too: building from the same Scenario
// value is what makes their setup replicas identical — including the fault
// plane, whose routing epochs each worker precomputes identically.
func buildBundle(sc Scenario) (*netsimNet, error) {
	mnet, err := sc.buildNet()
	if err != nil {
		return nil, err
	}
	return finishBundle(sc, mnet, nil)
}

// finishBundle completes a bundle on an already-generated (possibly
// artifact-decoded) network. A non-nil scope builds the slice-local
// variant a sliced distributed worker runs: routing state is scoped to the
// worker's owned nodes and nothing is eagerly warmed — OSPF trees fill
// lazily on the first (cur, dst) lookup slice traffic actually performs.
// Scoped or not, forwarding decisions are byte-identical (trees are always
// computed over the full member set; only retained state shrinks), and the
// fault plane's epoch chain advances through the same scoped clones.
func finishBundle(sc Scenario, mnet *model.Network, scope []bool) (*netsimNet, error) {
	hosts := hostsOf(mnet)
	if len(hosts) < 4 {
		return nil, fmt.Errorf("simcheck: scenario generated only %d hosts", len(hosts))
	}
	var router *interdomain.Router
	if scope != nil {
		router = interdomain.NewScoped(mnet, scope)
	} else {
		router = interdomain.New(mnet)
		router.Prepare(hosts)
	}
	tcp, udp := sc.script(hosts)
	b := &netsimNet{net: mnet, routes: router, hosts: hosts, tcp: tcp, udp: udp}
	if script := sc.effectiveFaults(mnet); script != nil && len(script.Events) > 0 {
		plane, err := faults.NewPlane(mnet, router, script)
		if err != nil {
			return nil, fmt.Errorf("simcheck: compiling fault plane: %w", err)
		}
		if scope == nil {
			plane.Prepare(hosts)
		}
		b.plane = plane
	}
	if sc.FluidMinBytes > 0 {
		if scope != nil {
			// The fluid solver walks whole paths; a slice-scoped router
			// refuses off-slice lookups. Hybrid distributed runs use the
			// replicated build (RunSpec.NoSlice / spec.Slice false).
			return nil, fmt.Errorf("simcheck: hybrid fidelity requires the replicated build, not a sliced worker")
		}
		b.isFluid = make([]bool, len(tcp))
		var fflows []fluid.Flow
		for i, f := range tcp {
			if f.bytes < sc.FluidMinBytes {
				continue
			}
			b.isFluid[i] = true
			b.fluidOf = append(b.fluidOf, i)
			fflows = append(fflows, fluid.Flow{
				Src: f.src, Dst: f.dst, Bytes: f.bytes, Start: f.at, Chain: -1,
			})
		}
		if len(fflows) > 0 {
			fcfg := fluid.Config{
				Net: mnet, Routes: router, End: sc.Horizon,
				Quantum: des.Time(sc.FluidQuantumNS),
			}
			if b.plane != nil {
				fcfg.Faults = b.plane
			}
			plane, err := fluid.Build(fcfg, fflows)
			if err != nil {
				return nil, fmt.Errorf("simcheck: building fluid plane: %w", err)
			}
			b.fluid = plane
		}
	}
	return b, nil
}

// Divergence is one observable difference between the sequential reference
// and a parallel run.
type Divergence struct {
	Field string
	Index int // -1 for scalar fields
	Seq   string
	Par   string
	// At is the earliest simulated time the divergence is attributable to
	// (time-valued fields only; 0 when unknown). It locates the divergent
	// barrier window: window = At / Window length.
	At des.Time
}

func (d Divergence) String() string {
	if d.Index >= 0 {
		return fmt.Sprintf("%s[%d]: seq=%s par=%s", d.Field, d.Index, d.Seq, d.Par)
	}
	return fmt.Sprintf("%s: seq=%s par=%s", d.Field, d.Seq, d.Par)
}

// KRun is the outcome of comparing one parallel engine count against the
// sequential reference.
type KRun struct {
	K           int
	Window      des.Time
	Windows     int // barrier windows executed (for trace attribution)
	MLL         des.Time
	Obs         *Observation
	Divergences []Divergence
	Violations  []pdes.Violation
}

// Failed reports whether this run diverged or violated an invariant.
func (kr *KRun) Failed() bool { return len(kr.Divergences) > 0 || len(kr.Violations) > 0 }

// DivergentWindow returns the barrier-window index of the earliest
// time-attributable divergence, or -1 when no divergence carries a time.
func (kr *KRun) DivergentWindow() int {
	best := des.EndOfTime
	for _, d := range kr.Divergences {
		if d.At > 0 && d.At < best {
			best = d.At
		}
	}
	if best == des.EndOfTime || kr.Window <= 0 {
		return -1
	}
	return int(best / kr.Window)
}

// Report is the outcome of checking one scenario.
type Report struct {
	Scenario Scenario
	Ref      *Observation
	Runs     []KRun
}

// Failed reports whether any parallel run diverged or violated an
// invariant.
func (r *Report) Failed() bool {
	for i := range r.Runs {
		if r.Runs[i].Failed() {
			return true
		}
	}
	return false
}

// Check builds the scenario, runs the sequential reference, then runs and
// diffs every configured parallel engine count. HPROF feeds the reference
// run's measured profile into the mapper — the same feedback loop the real
// experiments use.
func Check(sc Scenario) (*Report, error) {
	bundle, err := buildBundle(sc)
	if err != nil {
		return nil, err
	}

	ref, refRes, err := runOnce(bundle, sc, 1, nil, core.MaxMLL, nil, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("simcheck: reference run: %w", err)
	}
	var prof *profile.Profile
	if sc.Approach.ProfileBased() {
		prof = profile.FromResult(refRes, sc.Horizon)
	}

	rep := &Report{Scenario: sc, Ref: ref}
	for _, k := range sc.Ks {
		m, err := core.Map(bundle.net, sc.Approach, core.Config{Engines: k, Seed: sc.Seed}, prof)
		if err != nil {
			return nil, fmt.Errorf("simcheck: map k=%d: %w", k, err)
		}
		window := m.MLL
		if window > core.MaxMLL {
			window = core.MaxMLL
		}
		inv := &pdes.Invariants{}
		obs, res, err := runOnce(bundle, sc, k, m.Part, window, inv, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("simcheck: parallel run k=%d: %w", k, err)
		}
		rep.Runs = append(rep.Runs, KRun{
			K: k, Window: window, Windows: res.Windows, MLL: m.MLL,
			Obs: obs, Divergences: Diff(ref, obs), Violations: inv.Violations(),
		})
	}
	return rep, nil
}

// Diff compares a parallel observation against the sequential reference
// and returns every difference. Slice fields are compared element-wise;
// time-valued per-flow fields record the earlier of the two times as the
// divergence's attributable simulated time.
func Diff(seq, par *Observation) []Divergence {
	var ds []Divergence
	scalar := func(field string, a, b uint64) {
		if a != b {
			ds = append(ds, Divergence{Field: field, Index: -1,
				Seq: fmt.Sprint(a), Par: fmt.Sprint(b)})
		}
	}
	scalar("TotalEvents", seq.TotalEvents, par.TotalEvents)
	scalar("DeliveredBits", seq.DeliveredBits, par.DeliveredBits)
	scalar("Dropped", seq.Dropped, par.Dropped)
	scalar("Retransmissions", seq.Retransmissions, par.Retransmissions)
	scalar("FlowsStarted", uint64(seq.FlowsStarted), uint64(par.FlowsStarted))
	scalar("FlowsCompleted", uint64(seq.FlowsCompleted), uint64(par.FlowsCompleted))
	scalar("HTTPRequests", seq.HTTPRequests, par.HTTPRequests)
	scalar("HTTPResponses", seq.HTTPResponses, par.HTTPResponses)
	scalar("FluidStarted", uint64(seq.FluidStarted), uint64(par.FluidStarted))
	scalar("FluidCompleted", uint64(seq.FluidCompleted), uint64(par.FluidCompleted))
	scalar("FluidDeliveredBits", seq.FluidDeliveredBits, par.FluidDeliveredBits)
	if seq.FluidLastCompletion != par.FluidLastCompletion {
		ds = append(ds, Divergence{Field: "FluidLastCompletion", Index: -1,
			Seq: seq.FluidLastCompletion.String(), Par: par.FluidLastCompletion.String(),
			At: minTime(seq.FluidLastCompletion, par.FluidLastCompletion)})
	}
	if seq.LastCompletion != par.LastCompletion {
		ds = append(ds, Divergence{Field: "LastCompletion", Index: -1,
			Seq: seq.LastCompletion.String(), Par: par.LastCompletion.String(),
			At: minTime(seq.LastCompletion, par.LastCompletion)})
	}
	uslice := func(field string, a, b []uint64) {
		if len(a) != len(b) {
			ds = append(ds, Divergence{Field: field + ".len", Index: -1,
				Seq: fmt.Sprint(len(a)), Par: fmt.Sprint(len(b))})
			return
		}
		for i := range a {
			if a[i] != b[i] {
				ds = append(ds, Divergence{Field: field, Index: i,
					Seq: fmt.Sprint(a[i]), Par: fmt.Sprint(b[i])})
			}
		}
	}
	uslice("NodeEvents", seq.NodeEvents, par.NodeEvents)
	uslice("LinkBits", seq.LinkBits, par.LinkBits)
	uslice("LinkDrops", seq.LinkDrops, par.LinkDrops)
	uslice("FaultDrops", seq.FaultDrops, par.FaultDrops)
	uslice("FluidLinkBits", seq.FluidLinkBits, par.FluidLinkBits)
	tslice := func(field string, a, b []des.Time) {
		for i := range a {
			if i < len(b) && a[i] != b[i] {
				ds = append(ds, Divergence{Field: field, Index: i,
					Seq: a[i].String(), Par: b[i].String(),
					At: minTime(a[i], b[i])})
			}
		}
	}
	tslice("TCPDone", seq.TCPDone, par.TCPDone)
	tslice("TCPRecv", seq.TCPRecv, par.TCPRecv)
	tslice("UDPRecv", seq.UDPRecv, par.UDPRecv)
	return ds
}

// TraceRun re-executes one (scenario, k) pair with the flight recorder
// attached and writes a Chrome trace-event file of every barrier window —
// the artifact to open next to a divergence report: the divergent window
// index from KRun.DivergentWindow locates the exchange that went wrong.
func TraceRun(sc Scenario, k int, w io.Writer) error {
	bundle, err := buildBundle(sc)
	if err != nil {
		return err
	}
	var prof *profile.Profile
	if sc.Approach.ProfileBased() {
		_, refRes, err := runOnce(bundle, sc, 1, nil, core.MaxMLL, nil, nil, nil)
		if err != nil {
			return err
		}
		prof = profile.FromResult(refRes, sc.Horizon)
	}
	m, err := core.Map(bundle.net, sc.Approach, core.Config{Engines: k, Seed: sc.Seed}, prof)
	if err != nil {
		return err
	}
	window := m.MLL
	if window > core.MaxMLL {
		window = core.MaxMLL
	}
	tel := telemetry.New(k, 1<<16)
	if _, _, err := runOnce(bundle, sc, k, m.Part, window, &pdes.Invariants{}, tel, nil); err != nil {
		return err
	}
	return telemetry.WriteChromeTrace(w, tel.Windows.Snapshot(), map[string]string{
		"tool":     "simcheck",
		"scenario": sc.String(),
		"k":        fmt.Sprint(k),
		"window":   window.String(),
	})
}

func minTime(a, b des.Time) des.Time {
	if a == 0 {
		return b
	}
	if b != 0 && b < a {
		return b
	}
	return a
}
