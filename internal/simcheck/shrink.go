package simcheck

import "massf/internal/des"

// Shrink greedily reduces a failing scenario to a smaller one that still
// fails, re-running the oracle after every candidate reduction. fails
// reports whether a scenario still reproduces the failure (a Check error
// counts as not reproducing — shrinking must preserve the *observed*
// failure, not trade it for a build error); budget caps the number of
// fails() calls. The result is locally minimal with respect to the
// transformation set: single engine count, fewer flows, no HTTP, shorter
// horizon, smaller topology.
func Shrink(sc Scenario, fails func(Scenario) bool, budget int) Scenario {
	try := func(cand Scenario) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return fails(cand)
	}

	// First isolate a single failing engine count — every later probe then
	// costs one parallel run instead of three.
	if len(sc.Ks) > 1 {
		for _, k := range sc.Ks {
			cand := sc
			cand.Ks = []int{k}
			if try(cand) {
				sc = cand
				break
			}
		}
	}

	for budget > 0 {
		improved := false
		for _, cand := range reductions(sc) {
			if try(cand) {
				sc = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return sc
}

// reductions proposes the next round of candidate scenarios, each one
// strictly smaller than sc along one axis.
func reductions(sc Scenario) []Scenario {
	var out []Scenario
	add := func(mut func(*Scenario)) {
		cand := sc
		// Candidates share sc's Ks slice and Faults pointer; reductions
		// never mutate Ks and Clone() the script before editing it.
		mut(&cand)
		out = append(out, cand)
	}
	if sc.Faults != nil || sc.ChurnEvents > 0 {
		add(func(c *Scenario) { c.Faults = nil; c.ChurnEvents = 0; c.ChurnSeed = 0 })
	}
	if sc.Faults != nil && len(sc.Faults.Events) > 1 {
		add(func(c *Scenario) {
			c.Faults = c.Faults.Clone()
			c.Faults.Events = c.Faults.Events[:len(c.Faults.Events)/2]
		})
	}
	if sc.ChurnEvents > 1 {
		add(func(c *Scenario) { c.ChurnEvents /= 2 })
	}
	if sc.TCPFlows > 0 {
		add(func(c *Scenario) { c.TCPFlows /= 2 })
	}
	if sc.UDPSends > 0 {
		add(func(c *Scenario) { c.UDPSends /= 2 })
	}
	if sc.HTTPClients > 0 {
		add(func(c *Scenario) { c.HTTPClients = 0; c.HTTPServers = 0 })
	}
	if sc.Horizon > 50*des.Millisecond {
		add(func(c *Scenario) { c.Horizon /= 2 })
	}
	if sc.MultiAS {
		if sc.ASes > 2 {
			add(func(c *Scenario) { c.ASes = max(2, c.ASes/2) })
		}
		if sc.RoutersPerAS > 4 {
			add(func(c *Scenario) { c.RoutersPerAS = max(4, c.RoutersPerAS/2) })
		}
	} else if sc.Routers > 20 {
		add(func(c *Scenario) { c.Routers = max(20, c.Routers/2) })
	}
	if sc.Hosts > 10 {
		add(func(c *Scenario) { c.Hosts = max(10, c.Hosts/2) })
	}
	return out
}
