// Observer neutrality: the netmon observability plane must be a pure
// observer. Attaching it to a run — sequential or distributed — may not
// change a single observable, and the packet paths it samples must be
// both partition-independent and consistent with the routing actually in
// force. CheckNeutrality is the conformance dimension proving all three.

package simcheck

import (
	"fmt"
	"reflect"
	"sort"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/model"
	"massf/internal/netmon"
	"massf/internal/netsim"
	"massf/internal/profile"
)

// NeutralityReport is the outcome of one observer-neutrality check: the
// same scenario run uninstrumented (reference) and instrumented, N=1 and
// N=k, with every instrumented observation diffed against the reference.
type NeutralityReport struct {
	Scenario Scenario
	Sample   int // path-sampling stride the instrumented legs used
	K        int
	Window   des.Time

	DivsSeq []Divergence // instrumented N=1 vs plain N=1
	DivsPar []Divergence // instrumented N=k vs plain N=1

	// SpansDiverge is set when the instrumented sequential and parallel
	// runs sampled different span sets (modulo the recording engine):
	// sampling leaked partition state into the observation.
	SpansDiverge       bool
	SeqSpans, ParSpans int

	// Paths audits the parallel run's sampled traces against the route
	// table; Complete counts the ones that reached their destination.
	Paths    []TracePath
	Complete int
}

// Failed reports whether instrumentation perturbed the run.
func (r *NeutralityReport) Failed() bool {
	return len(r.DivsSeq) > 0 || len(r.DivsPar) > 0 || r.SpansDiverge
}

// String is the one-line summary used by the cmd layer.
func (r *NeutralityReport) String() string {
	verdict := "NEUTRAL"
	if r.Failed() {
		verdict = fmt.Sprintf("PERTURBED (seq=%d par=%d spans-diverge=%v)",
			len(r.DivsSeq), len(r.DivsPar), r.SpansDiverge)
	}
	return fmt.Sprintf("netmon k=%d sample=%d spans=%d paths=%d/%d: %s",
		r.K, r.Sample, r.ParSpans, r.Complete, len(r.Paths), verdict)
}

// CheckNeutrality runs sc four ways — plain and instrumented, sequential
// and on k engines — and verifies the netmon plane observed without
// perturbing: all observations identical, sampled spans identical across
// partitionings, and every sampled path consistent with the routes.
// sample <= 0 defaults to stride 4.
func CheckNeutrality(sc Scenario, k, sample int) (*NeutralityReport, error) {
	if sample <= 0 {
		sample = 4
	}
	plain, inst := sc, sc
	plain.NetSample, inst.NetSample = 0, sample
	// One bundle serves every leg: NetSample does not influence the build,
	// and sharing warmed routes is exactly what real runs do.
	bundle, err := buildBundle(sc)
	if err != nil {
		return nil, err
	}
	ref, refRes, err := runOnce(bundle, plain, 1, nil, core.MaxMLL, nil, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("simcheck: reference run: %w", err)
	}
	instSeq, _, err := runOnce(bundle, inst, 1, nil, core.MaxMLL, nil, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("simcheck: instrumented sequential run: %w", err)
	}
	var prof *profile.Profile
	if sc.Approach.ProfileBased() {
		prof = profile.FromResult(refRes, sc.Horizon)
	}
	m, err := core.Map(bundle.net, sc.Approach, core.Config{Engines: k, Seed: sc.Seed}, prof)
	if err != nil {
		return nil, fmt.Errorf("simcheck: map k=%d: %w", k, err)
	}
	window := m.MLL
	if window > core.MaxMLL {
		window = core.MaxMLL
	}
	instPar, _, err := runOnce(bundle, inst, k, m.Part, window, nil, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("simcheck: instrumented parallel run k=%d: %w", k, err)
	}

	rep := &NeutralityReport{
		Scenario: sc, Sample: sample, K: k, Window: window,
		DivsSeq: Diff(ref, instSeq), DivsPar: Diff(ref, instPar),
		SeqSpans: len(instSeq.PathSpans), ParSpans: len(instPar.PathSpans),
	}
	rep.SpansDiverge = !spansEqualModuloEngine(instSeq.PathSpans, instPar.PathSpans)
	rep.Paths = AuditTraces(bundle.net, bundle.routes, instPar.PathSpans)
	for _, p := range rep.Paths {
		if p.Complete {
			rep.Complete++
		}
	}
	return rep, nil
}

// AuditScenarioTraces rebuilds sc's network and routing and audits spans
// against them — for callers (like the subprocess e2e test) that hold
// merged worker spans but not the bundle the workers built from. The
// rebuild is deterministic, so the routes match the ones the run used.
func AuditScenarioTraces(sc Scenario, spans []netmon.HopSpan) ([]TracePath, error) {
	bundle, err := buildBundle(sc)
	if err != nil {
		return nil, err
	}
	return AuditTraces(bundle.net, bundle.routes, spans), nil
}

// spansEqualModuloEngine compares two span sets ignoring the engine that
// recorded each span — the one field that legitimately depends on the
// partition.
func spansEqualModuloEngine(a, b []netmon.HopSpan) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = append([]netmon.HopSpan(nil), a...), append([]netmon.HopSpan(nil), b...)
	for i := range a {
		a[i].Engine, b[i].Engine = 0, 0
	}
	return reflect.DeepEqual(a, b)
}

// TracePath is the audit verdict for one sampled packet: whether the
// recorded hop chain walks the forwarding table from source toward
// destination without gaps, and which engines contributed spans (a
// cross-worker path shows more than one).
type TracePath struct {
	Trace    uint64
	Src, Dst model.NodeID
	Ack      bool
	Hops     int
	Engines  []int // distinct recording engines, ascending
	Complete bool  // chain reached Dst with a deliver span
	Err      string
}

// AuditTraces replays every sampled trace against the forwarding function:
// each hop span must start at the node the previous hop handed the packet
// to and use exactly the link NextLink selects for it. Only meaningful for
// scenarios with static routing (no fault churn) — under churn the route
// in force at sampling time may differ from the final table.
func AuditTraces(nw *model.Network, routes netsim.Routes, spans []netmon.HopSpan) []TracePath {
	sorted := append([]netmon.HopSpan(nil), spans...)
	netmon.SortSpans(sorted)
	var out []TracePath
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Trace == sorted[i].Trace {
			j++
		}
		out = append(out, auditOne(nw, routes, sorted[i:j]))
		i = j
	}
	return out
}

// auditOne walks one trace's spans. Packets originate at span Src for data
// and ACKs alike (an ACK's Src is the data receiver), so the walk always
// starts there.
func auditOne(nw *model.Network, routes netsim.Routes, spans []netmon.HopSpan) TracePath {
	first := spans[0]
	p := TracePath{Trace: first.Trace, Src: first.Src, Dst: first.Dst, Ack: first.Ack}
	engines := map[int]bool{}
	cur := p.Src
	for _, sp := range spans {
		engines[sp.Engine] = true
		switch sp.Kind {
		case netmon.SpanHop:
			if sp.Node != cur {
				p.Err = fmt.Sprintf("hop %d at node %d, expected %d", p.Hops, sp.Node, cur)
				break
			}
			want := routes.NextLink(cur, p.Dst)
			if sp.Link != want {
				p.Err = fmt.Sprintf("hop %d from node %d took link %d, route says %d",
					p.Hops, cur, sp.Link, want)
				break
			}
			cur = nw.Links[sp.Link].Other(cur)
			p.Hops++
		case netmon.SpanDeliver:
			if sp.Node != p.Dst || cur != p.Dst {
				p.Err = fmt.Sprintf("delivered at node %d, destination %d (walk at %d)",
					sp.Node, p.Dst, cur)
				break
			}
			p.Complete = true
		default:
			// A drop span legitimately terminates the path short.
		}
		if p.Err != "" {
			break
		}
	}
	for e := range engines {
		p.Engines = append(p.Engines, e)
	}
	sort.Ints(p.Engines)
	return p
}
