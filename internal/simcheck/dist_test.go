package simcheck

import (
	"strings"
	"testing"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/dist"
)

func TestSplitEngines(t *testing.T) {
	cases := []struct {
		k, workers int
		want       [][2]int
	}{
		{4, 1, [][2]int{{0, 4}}},
		{4, 2, [][2]int{{0, 2}, {2, 2}}},
		{4, 4, [][2]int{{0, 1}, {1, 1}, {2, 1}, {3, 1}}},
		{8, 3, [][2]int{{0, 3}, {3, 3}, {6, 2}}},
	}
	for _, c := range cases {
		got := SplitEngines(c.k, c.workers)
		if len(got) != len(c.want) {
			t.Fatalf("SplitEngines(%d,%d) = %v", c.k, c.workers, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitEngines(%d,%d) = %v, want %v", c.k, c.workers, got, c.want)
			}
		}
	}
}

func TestMergeObservations(t *testing.T) {
	a := &Observation{
		TotalEvents: 10, DeliveredBits: 100, FlowsStarted: 2, LastCompletion: 5,
		NodeEvents: []uint64{1, 0}, LinkBits: []uint64{8, 0}, LinkDrops: []uint64{1, 0},
		TCPDone: []des.Time{3, 0}, TCPRecv: []des.Time{2, 0}, UDPRecv: []des.Time{0, 4},
	}
	b := &Observation{
		TotalEvents: 5, DeliveredBits: 50, FlowsStarted: 1, LastCompletion: 9,
		NodeEvents: []uint64{0, 2}, LinkBits: []uint64{0, 16}, LinkDrops: []uint64{0, 3},
		TCPDone: []des.Time{0, 7}, TCPRecv: []des.Time{0, 6}, UDPRecv: []des.Time{1, 0},
	}
	m, err := MergeObservations([]*Observation{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalEvents != 15 || m.DeliveredBits != 150 || m.FlowsStarted != 3 ||
		m.LastCompletion != 9 {
		t.Fatalf("scalar merge wrong: %+v", m)
	}
	if m.NodeEvents[0] != 1 || m.NodeEvents[1] != 2 || m.LinkBits[1] != 16 || m.LinkDrops[1] != 3 {
		t.Fatalf("per-element merge wrong: %+v", m)
	}
	if m.TCPDone[0] != 3 || m.TCPDone[1] != 7 || m.TCPRecv[1] != 6 || m.UDPRecv[0] != 1 || m.UDPRecv[1] != 4 {
		t.Fatalf("time merge wrong: %+v", m)
	}

	// Two workers reporting the same per-flow slot is a conformance failure.
	dup := &Observation{
		NodeEvents: []uint64{0, 0}, LinkBits: []uint64{0, 0}, LinkDrops: []uint64{0, 0},
		TCPDone: []des.Time{1, 0}, TCPRecv: []des.Time{0, 0}, UDPRecv: []des.Time{0, 0},
	}
	if _, err := MergeObservations([]*Observation{a, dup}); err == nil ||
		!strings.Contains(err.Error(), "TCPDone[0]") {
		t.Fatalf("duplicate slot not detected: %v", err)
	}
	// Mismatched slice geometry means the workers did not run the same
	// scenario.
	short := &Observation{NodeEvents: []uint64{0}}
	if _, err := MergeObservations([]*Observation{a, short}); err == nil {
		t.Fatal("slice length mismatch not detected")
	}
	if _, err := MergeObservations(nil); err == nil {
		t.Fatal("empty merge not detected")
	}
}

// distScenario is a fixed scenario with every traffic type, used by the
// loopback distributed checks. Mirrors the acceptance criterion: k=4, TCP +
// UDP + background HTTP, compared against in-process k=4 and sequential.
func distScenario() Scenario {
	return Scenario{
		Seed: 5, Routers: 40, Hosts: 30,
		TCPFlows: 12, UDPSends: 12, HTTPClients: 3, HTTPServers: 2,
		Horizon: 250 * des.Millisecond, Approach: core.TOP2, Ks: []int{4},
	}
}

// TestCheckDistributedMatchesReference: the same scenario run sequentially,
// in-process on k=4, and across loopback TCP workers hosting the same
// k=4 partition must produce byte-identical observables — for every worker
// count that divides the partition differently.
func TestCheckDistributedMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed oracle run skipped in -short")
	}
	sc := distScenario()
	for _, workers := range []int{2, 4} {
		rep, err := CheckDistributed(sc, 4, workers, dist.Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Ref.TotalEvents == 0 || rep.Ref.HTTPResponses == 0 {
			t.Fatalf("workers=%d: degenerate reference run: events=%d http=%d",
				workers, rep.Ref.TotalEvents, rep.Ref.HTTPResponses)
		}
		for _, d := range rep.DivsInProc {
			t.Errorf("workers=%d in-process k=4: %v", workers, d)
		}
		for _, d := range rep.DivsDist {
			t.Errorf("workers=%d distributed: %v", workers, d)
		}
		if len(rep.Names) != workers || rep.Windows == 0 {
			t.Fatalf("workers=%d: names=%v windows=%d", workers, rep.Names, rep.Windows)
		}
	}
}

// TestChurnDistributed: the acceptance case — a churn scenario at k=4
// split across 2 workers over the wire matches the sequential reference
// byte for byte, fault-loss attribution included.
func TestChurnDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed churn run skipped in -short")
	}
	sc := Churn(distScenario())
	rep, err := CheckDistributed(sc, 4, 2, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ref.FaultDrops) == 0 {
		t.Fatal("churn scenario compiled no fault plane")
	}
	for _, d := range rep.DivsInProc {
		t.Errorf("in-process k=4: %v", d)
	}
	for _, d := range rep.DivsDist {
		t.Errorf("distributed: %v", d)
	}
}

// TestCheckShardedMatchesReference is the sharded-vs-replicated dimension:
// slice-materializing workers — each building only its engine range's share
// of the scenario, with scoped lazy routing — must be byte-identical to the
// full-rebuild workers they replace AND to the sequential reference, on the
// same partition, through the scenario artifact cache.
func TestCheckShardedMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded oracle run skipped in -short")
	}
	cacheDir := t.TempDir()
	for _, workers := range []int{2, 4} {
		rep, err := CheckSharded(distScenario(), 4, workers, dist.Options{}, cacheDir)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, d := range rep.DivsInProc {
			t.Errorf("workers=%d in-process k=4: %v", workers, d)
		}
		for _, d := range rep.DivsDist {
			t.Errorf("workers=%d replicated: %v", workers, d)
		}
		for _, d := range rep.DivsSliced {
			t.Errorf("workers=%d sliced: %v", workers, d)
		}
		if rep.Sliced == nil || rep.Sliced.TotalEvents == 0 {
			t.Fatalf("workers=%d: sliced leg did not run", workers)
		}
		if len(rep.SlicedMem) != workers || len(rep.WorkerMem) != workers {
			t.Fatalf("workers=%d: mem accounting missing: %d sliced, %d replicated",
				workers, len(rep.SlicedMem), len(rep.WorkerMem))
		}
		owned := 0
		for _, wm := range rep.SlicedMem {
			if wm.BuildNS <= 0 {
				t.Errorf("workers=%d: worker %q reported no build time", workers, wm.Name)
			}
			if wm.SliceNodes <= 0 {
				t.Errorf("workers=%d: worker %q owns no nodes", workers, wm.Name)
			}
			owned += wm.SliceNodes
			// A sliced worker's retained routing state must be strictly
			// smaller than a replicated worker's (which holds every tree).
			for _, full := range rep.WorkerMem {
				if full.RouteBytes > 0 && wm.RouteBytes >= full.RouteBytes {
					t.Errorf("workers=%d: sliced worker %q holds %d route bytes, replicated %q holds %d",
						workers, wm.Name, wm.RouteBytes, full.Name, full.RouteBytes)
				}
			}
		}
		if want := 40 + 30; owned != want {
			t.Errorf("workers=%d: slices own %d nodes, network has %d", workers, owned, want)
		}
	}
}

// TestCheckShardedChurn: fault epochs replayed against slice-scoped routing
// clones converge to the same packet-level behavior as the replicated and
// sequential runs.
func TestCheckShardedChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded churn run skipped in -short")
	}
	sc := Churn(distScenario())
	rep, err := CheckSharded(sc, 4, 2, dist.Options{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ref.FaultDrops) == 0 {
		t.Fatal("churn scenario compiled no fault plane")
	}
	for _, d := range rep.DivsDist {
		t.Errorf("replicated: %v", d)
	}
	for _, d := range rep.DivsSliced {
		t.Errorf("sliced: %v", d)
	}
}

// TestCheckShardedMultiAS: scoped routing under BGP + stub default routing
// (the interdomain paths) is also partition-invariant.
func TestCheckShardedMultiAS(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded multi-AS run skipped in -short")
	}
	sc := Scenario{
		Seed: 9, MultiAS: true, ASes: 5, RoutersPerAS: 9, Hosts: 28,
		TCPFlows: 10, UDPSends: 10,
		Horizon: 250 * des.Millisecond, Approach: core.TOP2, Ks: []int{4},
	}
	rep, err := CheckSharded(sc, 4, 2, dist.Options{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.DivsDist {
		t.Errorf("replicated: %v", d)
	}
	for _, d := range rep.DivsSliced {
		t.Errorf("sliced: %v", d)
	}
}
