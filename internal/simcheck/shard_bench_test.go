package simcheck

import (
	"os"
	"testing"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/topology"
)

// The BenchmarkShardSetup pair feeds the `scenario-shard` label in
// BENCH_pipeline.json (make bench-shard): the per-worker scenario setup
// cost before and after the slice refactor — ns/op is build wall time,
// B/op the bytes a worker allocates to materialize its scenario state.

// shardBenchScenario is the acceptance scale for the memory win — a
// 20,000-router topology (paper scale) with 1,000 traffic endpoints, where
// routing state dominates setup.
func shardBenchScenario() Scenario {
	return Scenario{
		Seed: 7, Routers: 20000, Hosts: 1000,
		TCPFlows: 8, UDPSends: 8,
		Horizon: 100 * des.Millisecond, Approach: core.TOP2, Ks: []int{4},
	}
}

// BenchmarkShardSetupReplicated measures what every distributed worker paid
// before the refactor: regenerate the full topology and eagerly warm global
// routing trees for every traffic destination.
func BenchmarkShardSetupReplicated(b *testing.B) {
	sc := shardBenchScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net, err := sc.buildNet()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := finishBundle(sc, net, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardSetupSliced measures worker setup after the refactor: the
// topology is decoded from the content-addressed artifact cache (warmed by
// the first run), only worker 0's slice of the k=4 partition is built and
// verified, and routing state is scoped and lazy — no trees at build time.
func BenchmarkShardSetupSliced(b *testing.B) {
	sc := shardBenchScenario()
	dir, err := os.MkdirTemp("", "massf-scache-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	spec := &distSpec{Scenario: sc, CacheDir: dir}
	net, err := scenarioNet(spec) // warm the artifact cache
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Map(net, sc.Approach, core.Config{Engines: 4, Seed: sc.Seed}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wnet, err := scenarioNet(spec)
		if err != nil {
			b.Fatal(err)
		}
		sl, err := topology.BuildSlice(wnet, m.Part, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := sl.Verify(wnet, m.Part); err != nil {
			b.Fatal(err)
		}
		if _, err := finishBundle(sc, wnet, sl.Owned); err != nil {
			b.Fatal(err)
		}
	}
}
