// Distributed conformance checking: the oracle's scenario runs split
// across worker processes joined by the dist TCP transport, with the
// merged worker partials diffed against the sequential reference AND the
// in-process parallel run of the same partition. Passing means the wire
// path changed nothing: coordinator-routed events reproduce the
// shared-memory exchange byte for byte.
package simcheck

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/dist"
	"massf/internal/netmon"
	"massf/internal/pdes"
	"massf/internal/profile"
)

// DistJobKind is the dist job kind naming the simcheck scenario runner.
const DistJobKind = "simcheck"

// distSpec is the serialized job description every worker of a distributed
// check receives: the full scenario (each worker rebuilds it — replicated
// setup) plus the run geometry the coordinator chose. Fields are exported
// for JSON only.
type distSpec struct {
	Scenario Scenario
	K        int
	Part     []int32
	Window   des.Time
}

// Runners is the runner registry a simcheck-capable worker process needs;
// the cmd layer hands it to dist.RunWorker.
func Runners() map[string]dist.Runner {
	return map[string]dist.Runner{DistJobKind: DistRunner}
}

// DistRunner executes one worker's share of a distributed scenario run:
// rebuild the scenario from the spec, run the hosted engine range through
// the transport, and return the worker's partial Observation as JSON.
func DistRunner(job dist.Job, t pdes.Transport) ([]byte, error) {
	var spec distSpec
	if err := json.Unmarshal(job.Spec, &spec); err != nil {
		return nil, fmt.Errorf("simcheck: job spec: %w", err)
	}
	bundle, err := buildBundle(spec.Scenario)
	if err != nil {
		return nil, fmt.Errorf("simcheck: rebuilding scenario: %w", err)
	}
	obs, _, err := runOnce(bundle, spec.Scenario, spec.K, spec.Part, spec.Window, nil, nil,
		&distRun{transport: t, first: job.First, hosted: job.Hosted})
	if err != nil {
		return nil, err
	}
	return json.Marshal(obs)
}

// MergeObservations folds worker partials into the global observation.
// Counters sum (a worker only counts its hosted engines); per-flow times
// take the unique non-zero report (each callback fires on exactly one
// worker — two workers reporting the same slot is itself a conformance
// failure); LastCompletion is the max.
func MergeObservations(parts []*Observation) (*Observation, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("simcheck: no worker observations to merge")
	}
	m := &Observation{
		NodeEvents: make([]uint64, len(parts[0].NodeEvents)),
		LinkBits:   make([]uint64, len(parts[0].LinkBits)),
		LinkDrops:  make([]uint64, len(parts[0].LinkDrops)),
		TCPDone:    make([]des.Time, len(parts[0].TCPDone)),
		TCPRecv:    make([]des.Time, len(parts[0].TCPRecv)),
		UDPRecv:    make([]des.Time, len(parts[0].UDPRecv)),
	}
	if parts[0].FaultDrops != nil {
		m.FaultDrops = make([]uint64, len(parts[0].FaultDrops))
	}
	sumSlice := func(dst, src []uint64, field string, wi int) error {
		if len(src) != len(dst) {
			return fmt.Errorf("simcheck: worker %d reports %d %s entries, worker 0 reports %d",
				wi, len(src), field, len(dst))
		}
		for i := range src {
			dst[i] += src[i]
		}
		return nil
	}
	mergeTimes := func(dst, src []des.Time, field string, wi int) error {
		if len(src) != len(dst) {
			return fmt.Errorf("simcheck: worker %d reports %d %s entries, worker 0 reports %d",
				wi, len(src), field, len(dst))
		}
		for i, t := range src {
			if t == 0 {
				continue
			}
			if dst[i] != 0 {
				return fmt.Errorf("simcheck: %s[%d] reported by two workers (%v and %v)",
					field, i, dst[i], t)
			}
			dst[i] = t
		}
		return nil
	}
	for wi, p := range parts {
		m.TotalEvents += p.TotalEvents
		m.DeliveredBits += p.DeliveredBits
		m.Dropped += p.Dropped
		m.Retransmissions += p.Retransmissions
		m.FlowsStarted += p.FlowsStarted
		m.FlowsCompleted += p.FlowsCompleted
		m.HTTPRequests += p.HTTPRequests
		m.HTTPResponses += p.HTTPResponses
		if p.LastCompletion > m.LastCompletion {
			m.LastCompletion = p.LastCompletion
		}
		if err := sumSlice(m.NodeEvents, p.NodeEvents, "NodeEvents", wi); err != nil {
			return nil, err
		}
		if err := sumSlice(m.LinkBits, p.LinkBits, "LinkBits", wi); err != nil {
			return nil, err
		}
		if err := sumSlice(m.LinkDrops, p.LinkDrops, "LinkDrops", wi); err != nil {
			return nil, err
		}
		if err := sumSlice(m.FaultDrops, p.FaultDrops, "FaultDrops", wi); err != nil {
			return nil, err
		}
		if err := mergeTimes(m.TCPDone, p.TCPDone, "TCPDone", wi); err != nil {
			return nil, err
		}
		if err := mergeTimes(m.TCPRecv, p.TCPRecv, "TCPRecv", wi); err != nil {
			return nil, err
		}
		if err := mergeTimes(m.UDPRecv, p.UDPRecv, "UDPRecv", wi); err != nil {
			return nil, err
		}
		// Each hop span is recorded on the worker hosting the executing
		// engine, so worker partials are disjoint: concatenate, then
		// restore the canonical order.
		m.PathSpans = append(m.PathSpans, p.PathSpans...)
	}
	netmon.SortSpans(m.PathSpans)
	return m, nil
}

// DistReport is the outcome of one distributed conformance check: the same
// scenario run three ways — sequential reference, in-process on k engines,
// and distributed across worker processes on the SAME k-engine partition —
// with both parallel observations diffed against the reference.
type DistReport struct {
	Scenario   Scenario
	K, Workers int
	Window     des.Time
	Windows    int // barrier windows the coordinator drove
	Names      []string

	Ref    *Observation // sequential N=1
	InProc *Observation // in-process k engines
	Dist   *Observation // merged worker partials

	DivsInProc []Divergence // InProc vs Ref
	DivsDist   []Divergence // Dist vs Ref
}

// Failed reports whether either parallel run diverged from the reference.
func (r *DistReport) Failed() bool {
	return len(r.DivsInProc) > 0 || len(r.DivsDist) > 0
}

// SplitEngines carves k engines into n contiguous near-equal
// [first, first+hosted) ranges, one per worker.
func SplitEngines(k, workers int) [][2]int {
	ranges := make([][2]int, workers)
	base, extra := k/workers, k%workers
	first := 0
	for i := range ranges {
		hosted := base
		if i < extra {
			hosted++
		}
		ranges[i] = [2]int{first, hosted}
		first += hosted
	}
	return ranges
}

// PlanDistributed runs the local legs of a distributed check — the
// sequential reference (which also feeds profile-based mapping) and the
// in-process k-engine run — and returns the report skeleton plus the
// dist.RunConfig whose jobs the workers execute.
func PlanDistributed(sc Scenario, k, workers int) (*DistReport, dist.RunConfig, error) {
	if workers < 1 || workers > k {
		return nil, dist.RunConfig{}, fmt.Errorf("simcheck: %d workers for %d engines", workers, k)
	}
	bundle, err := buildBundle(sc)
	if err != nil {
		return nil, dist.RunConfig{}, err
	}
	ref, refRes, err := runOnce(bundle, sc, 1, nil, core.MaxMLL, nil, nil, nil)
	if err != nil {
		return nil, dist.RunConfig{}, fmt.Errorf("simcheck: reference run: %w", err)
	}
	var prof *profile.Profile
	if sc.Approach.ProfileBased() {
		prof = profile.FromResult(refRes, sc.Horizon)
	}
	m, err := core.Map(bundle.net, sc.Approach, core.Config{Engines: k, Seed: sc.Seed}, prof)
	if err != nil {
		return nil, dist.RunConfig{}, fmt.Errorf("simcheck: map k=%d: %w", k, err)
	}
	window := m.MLL
	if window > core.MaxMLL {
		window = core.MaxMLL
	}
	inProc, _, err := runOnce(bundle, sc, k, m.Part, window, nil, nil, nil)
	if err != nil {
		return nil, dist.RunConfig{}, fmt.Errorf("simcheck: in-process run k=%d: %w", k, err)
	}

	spec, err := json.Marshal(distSpec{Scenario: sc, K: k, Part: m.Part, Window: window})
	if err != nil {
		return nil, dist.RunConfig{}, err
	}
	rc := dist.RunConfig{
		WindowNS: int64(window),
		// Must match the worker-side horizon arithmetic in pdes.runTransport.
		TotalWindows: int((sc.Horizon + window - 1) / window),
	}
	for _, r := range SplitEngines(k, workers) {
		rc.Jobs = append(rc.Jobs, dist.Job{
			Kind: DistJobKind, First: r[0], Hosted: r[1], Spec: spec,
		})
	}
	rep := &DistReport{
		Scenario: sc, K: k, Workers: workers, Window: window,
		Ref: ref, InProc: inProc, DivsInProc: Diff(ref, inProc),
	}
	return rep, rc, nil
}

// ServeDistributed plans a distributed check and coordinates it over ln.
// The caller launches the worker processes (massfd -worker, or in-process
// dist.RunWorker goroutines) against ln's address; any worker failure
// comes back as a *dist.WorkerError naming the culprit.
func ServeDistributed(ln net.Listener, sc Scenario, k, workers int, opt dist.Options) (*DistReport, error) {
	rep, rc, err := PlanDistributed(sc, k, workers)
	if err != nil {
		return nil, err
	}
	res, err := dist.Serve(ln, rc, opt)
	if err != nil {
		return nil, err
	}
	parts := make([]*Observation, len(res.Payloads))
	for i, p := range res.Payloads {
		parts[i] = &Observation{}
		if err := json.Unmarshal(p, parts[i]); err != nil {
			return nil, fmt.Errorf("simcheck: worker %d (%q) result: %w", i, res.Names[i], err)
		}
	}
	merged, err := MergeObservations(parts)
	if err != nil {
		return nil, err
	}
	rep.Windows = res.Windows
	rep.Names = res.Names
	rep.Dist = merged
	rep.DivsDist = Diff(rep.Ref, merged)
	return rep, nil
}

// CheckDistributed is the self-contained distributed conformance check:
// coordinator plus `workers` worker loops in this process, joined over
// loopback TCP — every byte still crosses the real wire protocol.
func CheckDistributed(sc Scenario, k, workers int, opt dist.Options) (*DistReport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = dist.RunWorker(ln.Addr().String(), fmt.Sprintf("worker-%d", i), Runners(), opt)
		}()
	}
	rep, err := ServeDistributed(ln, sc, k, workers, opt)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	for i, werr := range errs {
		if werr != nil {
			return nil, fmt.Errorf("simcheck: worker %d: %w", i, werr)
		}
	}
	return rep, nil
}
