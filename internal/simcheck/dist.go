// Distributed conformance checking: the oracle's scenario runs split
// across worker processes joined by the dist TCP transport, with the
// merged worker partials diffed against the sequential reference AND the
// in-process parallel run of the same partition. Passing means the wire
// path changed nothing: coordinator-routed events reproduce the
// shared-memory exchange byte for byte.
package simcheck

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/dist"
	"massf/internal/memstat"
	"massf/internal/model"
	"massf/internal/netmon"
	"massf/internal/pdes"
	"massf/internal/profile"
	"massf/internal/routing/interdomain"
	"massf/internal/scache"
	"massf/internal/topology"
)

// DistJobKind is the dist job kind naming the simcheck scenario runner.
const DistJobKind = "simcheck"

// distSpec is the serialized job description every worker of a distributed
// check receives: the scenario plus the run geometry the coordinator chose.
// With Slice false each worker rebuilds the full scenario (replicated
// setup); with Slice true a worker materializes only its engine range's
// share and checks its locally computed slice edge against the shipped
// boundary descriptor (Boundaries[i] for the worker covering
// SplitEngines(K, len(Boundaries))[i]). Fields are exported for JSON only.
type distSpec struct {
	Scenario Scenario
	K        int
	Part     []int32
	Window   des.Time

	Slice      bool                      `json:",omitempty"`
	Boundaries [][]topology.BoundaryLink `json:",omitempty"`
	// CacheDir, when set, points workers at a shared content-addressed
	// scenario artifact cache (internal/scache): the generated topology is
	// stored under its content key, so repeated runs — and the other
	// workers on the same machine — skip generation. Keying by content is
	// what lets concurrent runs on different scenarios share the directory.
	CacheDir string `json:",omitempty"`
}

// Runners is the runner registry a simcheck-capable worker process needs;
// the cmd layer hands it to dist.RunWorker.
func Runners() map[string]dist.Runner {
	return map[string]dist.Runner{DistJobKind: DistRunner}
}

// scenarioNet produces the scenario's network, through the artifact cache
// when the spec names one: on a hit the topology is decoded instead of
// regenerated; on a miss it is generated and published for the next run.
// Cache failures degrade to generation — the cache is an accelerator, never
// a correctness dependency.
func scenarioNet(spec *distSpec) (*model.Network, error) {
	if spec.CacheDir == "" {
		return spec.Scenario.buildNet()
	}
	c, err := scache.Open(spec.CacheDir)
	if err != nil {
		return spec.Scenario.buildNet()
	}
	key := spec.Scenario.topoKey()
	if data, ok, _ := c.Get(key); ok {
		if net, err := model.Decode(data); err == nil {
			return net, nil
		}
		// Stale or corrupt entry (e.g. codec version bump): regenerate.
	}
	net, err := spec.Scenario.buildNet()
	if err != nil {
		return nil, err
	}
	_ = c.Put(key, model.Encode(net)) // best effort; identical on both writers of a race
	return net, nil
}

// workerSlice computes and validates the slice a sliced worker
// materializes: the boundary derived locally from (partition, engine range)
// must match the descriptor the coordinator shipped, so partition drift
// between coordinator and worker binaries is caught at build time instead
// of surfacing as silent packet loss.
func workerSlice(spec *distSpec, net *model.Network, job dist.Job) (*topology.Slice, error) {
	sl, err := topology.BuildSlice(net, spec.Part, job.First, job.Hosted)
	if err != nil {
		return nil, err
	}
	if err := sl.Verify(net, spec.Part); err != nil {
		return nil, err
	}
	widx := -1
	for i, r := range SplitEngines(spec.K, len(spec.Boundaries)) {
		if r[0] == job.First && r[1] == job.Hosted {
			widx = i
			break
		}
	}
	if widx < 0 {
		return nil, fmt.Errorf("simcheck: engine range [%d,%d) matches no worker of the shipped plan",
			job.First, job.First+job.Hosted)
	}
	shipped := spec.Boundaries[widx]
	if len(shipped) != len(sl.Boundary) {
		return nil, fmt.Errorf("simcheck: worker computed %d boundary links, coordinator shipped %d",
			len(sl.Boundary), len(shipped))
	}
	for i := range shipped {
		if shipped[i] != sl.Boundary[i] {
			return nil, fmt.Errorf("simcheck: boundary link %d differs: worker %+v, coordinator %+v",
				i, sl.Boundary[i], shipped[i])
		}
	}
	return sl, nil
}

// DistRunner executes one worker's share of a distributed scenario run:
// materialize the scenario from the spec — fully replicated, or just this
// worker's slice when the spec says so — run the hosted engine range
// through the transport, and return the worker's partial Observation
// (including its build-time and memory accounting) as JSON.
func DistRunner(job dist.Job, t pdes.Transport) ([]byte, error) {
	var spec distSpec
	if err := json.Unmarshal(job.Spec, &spec); err != nil {
		return nil, fmt.Errorf("simcheck: job spec: %w", err)
	}
	buildStart := time.Now()
	net, err := scenarioNet(&spec)
	if err != nil {
		return nil, fmt.Errorf("simcheck: rebuilding scenario: %w", err)
	}
	var scope []bool
	sliceNodes := 0
	if spec.Slice {
		sl, err := workerSlice(&spec, net, job)
		if err != nil {
			return nil, err
		}
		scope = sl.Owned
		sliceNodes = sl.OwnedNodes
	}
	bundle, err := finishBundle(spec.Scenario, net, scope)
	if err != nil {
		return nil, fmt.Errorf("simcheck: rebuilding scenario: %w", err)
	}
	buildNS := time.Since(buildStart).Nanoseconds()
	obs, _, err := runOnce(bundle, spec.Scenario, spec.K, spec.Part, spec.Window, nil, nil,
		&distRun{transport: t, first: job.First, hosted: job.Hosted, slice: spec.Slice})
	if err != nil {
		return nil, err
	}
	obs.BuildNS = buildNS
	obs.SliceNodes = sliceNodes
	if r, ok := bundle.routes.(*interdomain.Router); ok {
		obs.RouteBytes = r.TableBytes()
	}
	mem := memstat.ReadStable()
	obs.HeapInuse = mem.HeapInuse
	obs.PeakRSS = mem.PeakRSS
	return json.Marshal(obs)
}

// MergeObservations folds worker partials into the global observation.
// Counters sum (a worker only counts its hosted engines); per-flow times
// take the unique non-zero report (each callback fires on exactly one
// worker — two workers reporting the same slot is itself a conformance
// failure); LastCompletion is the max.
func MergeObservations(parts []*Observation) (*Observation, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("simcheck: no worker observations to merge")
	}
	m := &Observation{
		NodeEvents: make([]uint64, len(parts[0].NodeEvents)),
		LinkBits:   make([]uint64, len(parts[0].LinkBits)),
		LinkDrops:  make([]uint64, len(parts[0].LinkDrops)),
		TCPDone:    make([]des.Time, len(parts[0].TCPDone)),
		TCPRecv:    make([]des.Time, len(parts[0].TCPRecv)),
		UDPRecv:    make([]des.Time, len(parts[0].UDPRecv)),
	}
	if parts[0].FaultDrops != nil {
		m.FaultDrops = make([]uint64, len(parts[0].FaultDrops))
	}
	if parts[0].FluidLinkBits != nil {
		m.FluidLinkBits = make([]uint64, len(parts[0].FluidLinkBits))
	}
	sumSlice := func(dst, src []uint64, field string, wi int) error {
		if len(src) != len(dst) {
			return fmt.Errorf("simcheck: worker %d reports %d %s entries, worker 0 reports %d",
				wi, len(src), field, len(dst))
		}
		for i := range src {
			dst[i] += src[i]
		}
		return nil
	}
	mergeTimes := func(dst, src []des.Time, field string, wi int) error {
		if len(src) != len(dst) {
			return fmt.Errorf("simcheck: worker %d reports %d %s entries, worker 0 reports %d",
				wi, len(src), field, len(dst))
		}
		for i, t := range src {
			if t == 0 {
				continue
			}
			if dst[i] != 0 {
				return fmt.Errorf("simcheck: %s[%d] reported by two workers (%v and %v)",
					field, i, dst[i], t)
			}
			dst[i] = t
		}
		return nil
	}
	for wi, p := range parts {
		m.TotalEvents += p.TotalEvents
		m.DeliveredBits += p.DeliveredBits
		m.Dropped += p.Dropped
		m.Retransmissions += p.Retransmissions
		m.FlowsStarted += p.FlowsStarted
		m.FlowsCompleted += p.FlowsCompleted
		m.HTTPRequests += p.HTTPRequests
		m.HTTPResponses += p.HTTPResponses
		if p.LastCompletion > m.LastCompletion {
			m.LastCompletion = p.LastCompletion
		}
		m.FluidStarted += p.FluidStarted
		m.FluidCompleted += p.FluidCompleted
		m.FluidDeliveredBits += p.FluidDeliveredBits
		if p.FluidLastCompletion > m.FluidLastCompletion {
			m.FluidLastCompletion = p.FluidLastCompletion
		}
		if err := sumSlice(m.FluidLinkBits, p.FluidLinkBits, "FluidLinkBits", wi); err != nil {
			return nil, err
		}
		if err := sumSlice(m.NodeEvents, p.NodeEvents, "NodeEvents", wi); err != nil {
			return nil, err
		}
		if err := sumSlice(m.LinkBits, p.LinkBits, "LinkBits", wi); err != nil {
			return nil, err
		}
		if err := sumSlice(m.LinkDrops, p.LinkDrops, "LinkDrops", wi); err != nil {
			return nil, err
		}
		if err := sumSlice(m.FaultDrops, p.FaultDrops, "FaultDrops", wi); err != nil {
			return nil, err
		}
		if err := mergeTimes(m.TCPDone, p.TCPDone, "TCPDone", wi); err != nil {
			return nil, err
		}
		if err := mergeTimes(m.TCPRecv, p.TCPRecv, "TCPRecv", wi); err != nil {
			return nil, err
		}
		if err := mergeTimes(m.UDPRecv, p.UDPRecv, "UDPRecv", wi); err != nil {
			return nil, err
		}
		// Each hop span is recorded on the worker hosting the executing
		// engine, so worker partials are disjoint: concatenate, then
		// restore the canonical order.
		m.PathSpans = append(m.PathSpans, p.PathSpans...)
	}
	netmon.SortSpans(m.PathSpans)
	return m, nil
}

// WorkerMem is one worker's build accounting, lifted from its partial
// Observation: setup wall time, post-run live heap, process peak RSS, and
// retained OSPF table bytes.
type WorkerMem struct {
	Name       string
	BuildNS    int64
	HeapInuse  uint64
	PeakRSS    uint64
	RouteBytes int64
	SliceNodes int
}

// DistReport is the outcome of one distributed conformance check: the same
// scenario run several ways — sequential reference, in-process on k
// engines, distributed across full-rebuild (replicated) worker processes on
// the SAME k-engine partition, and (sharded checks only) distributed again
// across slice-materializing workers — with every parallel observation
// diffed against the reference.
type DistReport struct {
	Scenario   Scenario
	K, Workers int
	Window     des.Time
	Windows    int // barrier windows the coordinator drove
	Names      []string

	Ref    *Observation // sequential N=1
	InProc *Observation // in-process k engines
	Dist   *Observation // merged replicated-worker partials
	Sliced *Observation `json:",omitempty"` // merged sliced-worker partials

	DivsInProc []Divergence // InProc vs Ref
	DivsDist   []Divergence // Dist vs Ref
	DivsSliced []Divergence `json:",omitempty"` // Sliced vs Ref

	WorkerMem []WorkerMem `json:",omitempty"` // per replicated worker
	SlicedMem []WorkerMem `json:",omitempty"` // per sliced worker
}

// Failed reports whether any parallel run diverged from the reference.
func (r *DistReport) Failed() bool {
	return len(r.DivsInProc) > 0 || len(r.DivsDist) > 0 || len(r.DivsSliced) > 0
}

// SplitEngines carves k engines into n contiguous near-equal
// [first, first+hosted) ranges, one per worker.
func SplitEngines(k, workers int) [][2]int {
	ranges := make([][2]int, workers)
	base, extra := k/workers, k%workers
	first := 0
	for i := range ranges {
		hosted := base
		if i < extra {
			hosted++
		}
		ranges[i] = [2]int{first, hosted}
		first += hosted
	}
	return ranges
}

// distPlan is the local half of a distributed check: the report skeleton
// (reference + in-process legs already run and diffed) plus everything
// needed to cut worker job specs — replicated or sliced — for the chosen
// partition.
type distPlan struct {
	rep     *DistReport
	net     *model.Network
	sc      Scenario
	k       int
	workers int
	part    []int32
	window  des.Time
}

// planDistributed runs the local legs of a distributed check — the
// sequential reference (which also feeds profile-based mapping) and the
// in-process k-engine run.
func planDistributed(sc Scenario, k, workers int) (*distPlan, error) {
	if workers < 1 || workers > k {
		return nil, fmt.Errorf("simcheck: %d workers for %d engines", workers, k)
	}
	bundle, err := buildBundle(sc)
	if err != nil {
		return nil, err
	}
	ref, refRes, err := runOnce(bundle, sc, 1, nil, core.MaxMLL, nil, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("simcheck: reference run: %w", err)
	}
	var prof *profile.Profile
	if sc.Approach.ProfileBased() {
		prof = profile.FromResult(refRes, sc.Horizon)
	}
	m, err := core.Map(bundle.net, sc.Approach, core.Config{Engines: k, Seed: sc.Seed}, prof)
	if err != nil {
		return nil, fmt.Errorf("simcheck: map k=%d: %w", k, err)
	}
	window := m.MLL
	if window > core.MaxMLL {
		window = core.MaxMLL
	}
	inProc, _, err := runOnce(bundle, sc, k, m.Part, window, nil, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("simcheck: in-process run k=%d: %w", k, err)
	}
	rep := &DistReport{
		Scenario: sc, K: k, Workers: workers, Window: window,
		Ref: ref, InProc: inProc, DivsInProc: Diff(ref, inProc),
	}
	return &distPlan{
		rep: rep, net: bundle.net, sc: sc, k: k, workers: workers,
		part: m.Part, window: window,
	}, nil
}

// runConfig cuts the worker jobs for this plan. With sliced true the spec
// carries the partition's per-worker boundary descriptors (computed once
// here, verified independently by each worker) and flags slice-local
// materialization; cacheDir, when non-empty, names the shared scenario
// artifact cache workers read through.
func (p *distPlan) runConfig(sliced bool, cacheDir string) (dist.RunConfig, error) {
	spec := distSpec{
		Scenario: p.sc, K: p.k, Part: p.part, Window: p.window,
		Slice: sliced, CacheDir: cacheDir,
	}
	ranges := SplitEngines(p.k, p.workers)
	if sliced {
		for _, r := range ranges {
			sl, err := topology.BuildSlice(p.net, p.part, r[0], r[1])
			if err != nil {
				return dist.RunConfig{}, fmt.Errorf("simcheck: slicing engines [%d,%d): %w", r[0], r[0]+r[1], err)
			}
			spec.Boundaries = append(spec.Boundaries, sl.Boundary)
		}
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return dist.RunConfig{}, err
	}
	rc := dist.RunConfig{
		WindowNS: int64(p.window),
		// Must match the worker-side horizon arithmetic in pdes.runTransport.
		TotalWindows: int((p.sc.Horizon + p.window - 1) / p.window),
	}
	for _, r := range ranges {
		rc.Jobs = append(rc.Jobs, dist.Job{
			Kind: DistJobKind, First: r[0], Hosted: r[1], Spec: data,
		})
	}
	return rc, nil
}

// PlanDistributed runs the local legs of a distributed check and returns
// the report skeleton plus the dist.RunConfig whose (replicated-setup) jobs
// the workers execute.
func PlanDistributed(sc Scenario, k, workers int) (*DistReport, dist.RunConfig, error) {
	plan, err := planDistributed(sc, k, workers)
	if err != nil {
		return nil, dist.RunConfig{}, err
	}
	rc, err := plan.runConfig(false, "")
	if err != nil {
		return nil, dist.RunConfig{}, err
	}
	return plan.rep, rc, nil
}

// serveMerge drives one worker fleet over ln and merges its partials.
func serveMerge(ln net.Listener, rc dist.RunConfig, opt dist.Options) (*dist.Result, []*Observation, *Observation, error) {
	res, err := dist.Serve(ln, rc, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	parts := make([]*Observation, len(res.Payloads))
	for i, p := range res.Payloads {
		parts[i] = &Observation{}
		if err := json.Unmarshal(p, parts[i]); err != nil {
			return nil, nil, nil, fmt.Errorf("simcheck: worker %d (%q) result: %w", i, res.Names[i], err)
		}
	}
	merged, err := MergeObservations(parts)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, parts, merged, nil
}

// workerMem lifts each partial's build accounting into the report form.
func workerMem(parts []*Observation, names []string) []WorkerMem {
	out := make([]WorkerMem, len(parts))
	for i, p := range parts {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		out[i] = WorkerMem{
			Name: name, BuildNS: p.BuildNS, HeapInuse: p.HeapInuse,
			PeakRSS: p.PeakRSS, RouteBytes: p.RouteBytes, SliceNodes: p.SliceNodes,
		}
	}
	return out
}

// ServeDistributed plans a distributed check and coordinates it over ln.
// The caller launches the worker processes (massfd -worker, or in-process
// dist.RunWorker goroutines) against ln's address; any worker failure
// comes back as a *dist.WorkerError naming the culprit.
func ServeDistributed(ln net.Listener, sc Scenario, k, workers int, opt dist.Options) (*DistReport, error) {
	rep, rc, err := PlanDistributed(sc, k, workers)
	if err != nil {
		return nil, err
	}
	res, parts, merged, err := serveMerge(ln, rc, opt)
	if err != nil {
		return nil, err
	}
	rep.Windows = res.Windows
	rep.Names = res.Names
	rep.Dist = merged
	rep.DivsDist = Diff(rep.Ref, merged)
	rep.WorkerMem = workerMem(parts, res.Names)
	return rep, nil
}

// serveFleet spawns `workers` in-process worker loops against a fresh
// loopback listener and drives rc through them.
func serveFleet(rc dist.RunConfig, workers int, opt dist.Options) (*dist.Result, []*Observation, *Observation, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	defer ln.Close()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = dist.RunWorker(ln.Addr().String(), fmt.Sprintf("worker-%d", i), Runners(), opt)
		}()
	}
	res, parts, merged, err := serveMerge(ln, rc, opt)
	wg.Wait()
	if err != nil {
		return nil, nil, nil, err
	}
	for i, werr := range errs {
		if werr != nil {
			return nil, nil, nil, fmt.Errorf("simcheck: worker %d: %w", i, werr)
		}
	}
	return res, parts, merged, nil
}

// CheckDistributed is the self-contained distributed conformance check:
// coordinator plus `workers` worker loops in this process, joined over
// loopback TCP — every byte still crosses the real wire protocol.
func CheckDistributed(sc Scenario, k, workers int, opt dist.Options) (*DistReport, error) {
	rep, rc, err := PlanDistributed(sc, k, workers)
	if err != nil {
		return nil, err
	}
	res, parts, merged, err := serveFleet(rc, workers, opt)
	if err != nil {
		return nil, err
	}
	rep.Windows = res.Windows
	rep.Names = res.Names
	rep.Dist = merged
	rep.DivsDist = Diff(rep.Ref, merged)
	rep.WorkerMem = workerMem(parts, res.Names)
	return rep, nil
}

// CheckSharded is the sharded-vs-replicated conformance dimension: the same
// scenario planned once, then run through TWO self-contained worker fleets
// on the identical k-engine partition — full-rebuild (replicated) workers
// first, then slice-materializing workers — with both merged observations
// diffed against the sequential reference. Passing proves a sliced worker's
// lazy, slice-local setup is byte-identical to the replicated build it
// replaces, fault churn included (the scenario's fault plane replays
// against slice-scoped routing clones). cacheDir, when non-empty, routes
// both fleets' topology builds through the shared scenario artifact cache.
func CheckSharded(sc Scenario, k, workers int, opt dist.Options, cacheDir string) (*DistReport, error) {
	plan, err := planDistributed(sc, k, workers)
	if err != nil {
		return nil, err
	}
	rep := plan.rep

	rc, err := plan.runConfig(false, cacheDir)
	if err != nil {
		return nil, err
	}
	res, parts, merged, err := serveFleet(rc, workers, opt)
	if err != nil {
		return nil, fmt.Errorf("simcheck: replicated fleet: %w", err)
	}
	rep.Windows = res.Windows
	rep.Names = res.Names
	rep.Dist = merged
	rep.DivsDist = Diff(rep.Ref, merged)
	rep.WorkerMem = workerMem(parts, res.Names)

	src, err := plan.runConfig(true, cacheDir)
	if err != nil {
		return nil, err
	}
	sres, sparts, smerged, err := serveFleet(src, workers, opt)
	if err != nil {
		return nil, fmt.Errorf("simcheck: sliced fleet: %w", err)
	}
	rep.Sliced = smerged
	rep.DivsSliced = Diff(rep.Ref, smerged)
	rep.SlicedMem = workerMem(sparts, sres.Names)
	return rep, nil
}
