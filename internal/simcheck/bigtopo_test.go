package simcheck

import (
	"os"
	"runtime"
	"testing"

	"massf/internal/core"
	"massf/internal/memstat"
	"massf/internal/model"
	"massf/internal/routing/interdomain"
	"massf/internal/topology"
)

// TestBigTopoSliceMemory is the `make bigtopo` nightly smoke: on a 2-AS
// large-fanout topology partitioned for k=4, one worker's slice must retain
// well under 60% of the replicated baseline — both in OSPF table bytes
// (deterministic) and in measured heap growth. Replicated and sliced
// routing state are built sequentially in this one process (loopback
// workers share a heap, so per-process sampling cannot separate them) with
// a GC'd memstat reading around each.
//
// Heavy: gated behind MASSF_BIGTOPO=1, which the Makefile target sets.
func TestBigTopoSliceMemory(t *testing.T) {
	if os.Getenv("MASSF_BIGTOPO") != "1" {
		t.Skip("bigtopo memory smoke only runs under `make bigtopo` (MASSF_BIGTOPO=1)")
	}
	net := fanoutNet(2, 8, 9992, 500) // 20,000 routers — the paper's full scale
	m, err := core.Map(net, core.TOP2, core.Config{Engines: 4, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hosts := hostsOf(net)

	// Replicated baseline: what every worker held before the refactor —
	// global routing trees eagerly warmed for every traffic destination.
	base := memstat.ReadStable().HeapInuse
	repRouter := interdomain.New(net)
	repRouter.Prepare(hosts)
	repHeap := heapDelta(base)
	repBytes := repRouter.TableBytes()
	if repBytes == 0 {
		t.Fatal("replicated router retained no tables")
	}
	repRouter = nil //nolint:ineffassign // release before the sliced measurement

	// Sliced worker 0 of a 4-worker fleet (engines [0,1)): scoped lazy
	// routing, warmed by the same routing demand — a lookup from an owned
	// node in each AS toward every traffic destination.
	sl, err := topology.BuildSlice(net, m.Part, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	base = memstat.ReadStable().HeapInuse
	sliRouter := interdomain.NewScoped(net, sl.Owned)
	for _, cur := range ownedPerAS(net, sl.Owned) {
		for _, dst := range hosts {
			sliRouter.NextLink(cur, dst)
		}
	}
	sliHeap := heapDelta(base)
	sliBytes := sliRouter.TableBytes()
	runtime.KeepAlive(sliRouter)
	if sliBytes == 0 {
		t.Fatal("sliced router cached no tables — warm loop measured nothing")
	}

	t.Logf("replicated: %d table bytes, %d heap bytes; sliced: %d table bytes, %d heap bytes (%d owned nodes)",
		repBytes, repHeap, sliBytes, sliHeap, sl.OwnedNodes)
	if sliBytes >= repBytes*60/100 {
		t.Errorf("sliced worker retains %d table bytes, ≥ 60%% of replicated %d", sliBytes, repBytes)
	}
	if sliHeap >= repHeap*60/100 {
		t.Errorf("sliced worker grew the heap by %d bytes, ≥ 60%% of replicated %d", sliHeap, repHeap)
	}
}

// heapDelta returns HeapInuse growth since base, clamped at zero (a GC
// between readings can shrink the heap below the baseline).
func heapDelta(base uint64) int64 {
	now := memstat.ReadStable().HeapInuse
	if now < base {
		return 0
	}
	return int64(now - base)
}

// fanoutNet hand-builds the bigtopo shape — mabrite needs ≥ 3 ASes, and the
// smoke wants exactly two. Each AS is a full spine mesh with a large leaf
// fanout (every leaf dual-homed to two spines) and hosts spread round-robin
// over the leaves; the two ASes peer over two spine-to-spine links.
func fanoutNet(ases, spines, leaves, hostsPerAS int) *model.Network {
	net := &model.Network{}
	net.ASes = make([]model.AS, ases)
	spineIDs := make([][]model.NodeID, ases)
	for as := 0; as < ases; as++ {
		a := &net.ASes[as]
		a.ID = int32(as)
		a.Class = model.ASCore
		a.DefaultBorder = -1
		ox := float64(as) * 2000
		for s := 0; s < spines; s++ {
			id := net.AddNode(model.Router, int32(as), ox+float64(s)*10, 0)
			for _, prev := range spineIDs[as] {
				net.AddLink(prev, id, model.LatencyForDistance(net.Distance(prev, id)), model.Bps1G)
			}
			spineIDs[as] = append(spineIDs[as], id)
			a.Routers = append(a.Routers, id)
		}
		leafIDs := make([]model.NodeID, leaves)
		for l := 0; l < leaves; l++ {
			id := net.AddNode(model.Router, int32(as), ox+float64(l%100)*10, float64(1+l/100)*10)
			u, v := spineIDs[as][l%spines], spineIDs[as][(l+1)%spines]
			net.AddLink(id, u, model.LatencyForDistance(net.Distance(id, u)), model.Bps1G)
			net.AddLink(id, v, model.LatencyForDistance(net.Distance(id, v)), model.Bps1G)
			leafIDs[l] = id
			a.Routers = append(a.Routers, id)
		}
		for h := 0; h < hostsPerAS; h++ {
			leaf := leafIDs[h%leaves]
			id := net.AddNode(model.Host, int32(as), net.Nodes[leaf].X+1, net.Nodes[leaf].Y+1)
			net.AddLink(id, leaf, model.LatencyForDistance(net.Distance(id, leaf)), model.Bps100M)
			a.Hosts = append(a.Hosts, id)
		}
	}
	for as := 1; as < ases; as++ {
		for i := 0; i < 2; i++ {
			lb, rb := spineIDs[as-1][i], spineIDs[as][i]
			lid := net.AddLink(lb, rb, model.LatencyForDistance(net.Distance(lb, rb)), model.Bps10G)
			net.ASes[as-1].Neighbors = append(net.ASes[as-1].Neighbors, model.ASNeighbor{
				AS: int32(as), Rel: model.RelPeer, LocalBorder: lb, RemoteBorder: rb, Link: lid,
			})
			net.ASes[as].Neighbors = append(net.ASes[as].Neighbors, model.ASNeighbor{
				AS: int32(as - 1), Rel: model.RelPeer, LocalBorder: rb, RemoteBorder: lb, Link: lid,
			})
		}
	}
	return net
}

// ownedPerAS picks one owned router per AS — enough lookup origins to warm
// every routing domain a sliced worker forwards from.
func ownedPerAS(net *model.Network, owned []bool) []model.NodeID {
	seen := map[int32]bool{}
	var out []model.NodeID
	for i := range net.Nodes {
		if !owned[i] || net.Nodes[i].Kind != model.Router {
			continue
		}
		as := net.Nodes[i].AS
		if seen[as] {
			continue
		}
		seen[as] = true
		out = append(out, model.NodeID(i))
	}
	return out
}
