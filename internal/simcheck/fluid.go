// Hybrid-fidelity conformance: the -fluid dimension runs each seeded
// scenario twice — pure packet, and hybrid with bulk scripted TCP moved
// to the analytic fluid plane — and enforces two distinct properties:
//
//  1. Determinism: the hybrid run is byte-identical across engine counts
//     (N=1 ≡ every k), exactly like the pure-packet oracle. The fluid
//     plane is precomputed and replicated, so any divergence is a bug in
//     the hybrid coupling, not an accepted approximation.
//  2. Accuracy: the hybrid run deviates from the pure-packet reference
//     only within an executable error budget on per-flow goodput, FCT
//     percentiles, and per-link carried volume. The fluid model is an
//     approximation BY DESIGN (no slow start beyond the modeled startup
//     delay, no loss, ideal max-min sharing); the budget turns "close
//     enough" into a regression-testable number.
package simcheck

import (
	"fmt"
	"math"
	"sort"

	"massf/internal/core"
	"massf/internal/pdes"
	"massf/internal/profile"
)

// FluidBudget is the executable error budget of the hybrid fidelity
// model: every field is a maximum allowed relative error of the hybrid
// run against the pure-packet reference of the same scenario.
type FluidBudget struct {
	// GoodputMeanRel bounds the mean per-flow relative goodput error of
	// the fluidized transfers.
	GoodputMeanRel float64
	// FCTP50Rel / FCTP90Rel / FCTP99Rel bound the relative error of the
	// fluidized transfers' completion-time percentiles. Flows unfinished
	// at the horizon are censored to it in both runs.
	FCTP50Rel, FCTP90Rel, FCTP99Rel float64
	// LinkUtilRel bounds the traffic-weighted L1 error of per-link
	// carried wire volume: Σ_l |hybrid_l − packet_l| / Σ_l packet_l,
	// where hybrid counts packet AND fluid bits.
	LinkUtilRel float64
}

// DefaultFluidBudget is the budget cmd/simcheck -fluid enforces. The
// values bound what the fluid abstraction gives up relative to full TCP
// dynamics (slow start, loss recovery, ACK self-clocking) on the
// oracle's scenario distribution; tightening any of them is a model
// improvement, loosening them needs a documented reason.
// Measured over seeds 1–25 the realized errors peak at: goodput 0.16,
// FCT p50 0.25, p90 0.18, p99 0.14, link volume 0.37.
func DefaultFluidBudget() FluidBudget {
	return FluidBudget{
		GoodputMeanRel: 0.25,
		FCTP50Rel:      0.30,
		FCTP90Rel:      0.25,
		FCTP99Rel:      0.25,
		LinkUtilRel:    0.45,
	}
}

// FluidMetric is one budget line: the packet and hybrid values, the
// realized relative error, and the budget it is held to.
type FluidMetric struct {
	Name           string
	Packet, Hybrid float64
	Err, Budget    float64
	OK             bool
}

func (m FluidMetric) String() string {
	mark := "ok"
	if !m.OK {
		mark = "OVER"
	}
	return fmt.Sprintf("%-12s packet=%.4g hybrid=%.4g err=%.1f%% budget=%.0f%% %s",
		m.Name, m.Packet, m.Hybrid, 100*m.Err, 100*m.Budget, mark)
}

// FluidReport is the outcome of checking one scenario's hybrid fidelity.
type FluidReport struct {
	Scenario   Scenario     // the hybrid variant (FluidMinBytes set)
	FluidFlows int          // scripted TCP flows moved to the fluid plane
	PacketRef  *Observation // pure-packet sequential reference
	HybridRef  *Observation // hybrid sequential reference
	Runs       []KRun       // hybrid parallel runs, diffed against HybridRef
	Metrics    []FluidMetric
}

// Failed reports whether the hybrid run diverged across engine counts,
// violated a runtime invariant, or blew the error budget.
func (r *FluidReport) Failed() bool {
	for i := range r.Runs {
		if r.Runs[i].Failed() {
			return true
		}
	}
	for _, m := range r.Metrics {
		if !m.OK {
			return true
		}
	}
	return false
}

// relErr is the relative error of got against want, safe at want = 0.
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// percentile returns the p-quantile (0 < p ≤ 1) of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// fluidMetrics computes the budget lines from the two references. The
// per-flow series covers exactly the fluidized script entries; a flow
// unfinished at the horizon is censored to it (its realized service so
// far still counts through goodput's censored FCT).
func fluidMetrics(bundle *netsimNet, sc Scenario, packet, hybrid *Observation, budget FluidBudget) []FluidMetric {
	horizon := float64(sc.Horizon)
	var goodErrSum float64
	var fctP, fctH []float64
	for _, ti := range bundle.fluidOf {
		f := bundle.tcp[ti]
		censor := func(done float64) float64 {
			if done == 0 || done > horizon {
				return horizon - float64(f.at)
			}
			return done - float64(f.at)
		}
		fp := censor(float64(packet.TCPRecv[ti]))
		fh := censor(float64(hybrid.TCPRecv[ti]))
		fctP = append(fctP, fp)
		fctH = append(fctH, fh)
		goodErrSum += relErr(float64(f.bytes)*8/fh, float64(f.bytes)*8/fp)
	}
	sort.Float64s(fctP)
	sort.Float64s(fctH)
	n := float64(len(bundle.fluidOf))

	var pktBits, l1 float64
	for l := range packet.LinkBits {
		pb := float64(packet.LinkBits[l])
		hb := float64(hybrid.LinkBits[l])
		if hybrid.FluidLinkBits != nil {
			hb += float64(hybrid.FluidLinkBits[l])
		}
		pktBits += pb
		l1 += math.Abs(hb - pb)
	}

	line := func(name string, pv, hv, budget float64) FluidMetric {
		err := relErr(hv, pv)
		return FluidMetric{Name: name, Packet: pv, Hybrid: hv,
			Err: err, Budget: budget, OK: err <= budget}
	}
	ms := []FluidMetric{
		{Name: "goodput-mean", Err: goodErrSum / n, Budget: budget.GoodputMeanRel,
			OK: goodErrSum/n <= budget.GoodputMeanRel},
		line("fct-p50", percentile(fctP, 0.50), percentile(fctH, 0.50), budget.FCTP50Rel),
		line("fct-p90", percentile(fctP, 0.90), percentile(fctH, 0.90), budget.FCTP90Rel),
		line("fct-p99", percentile(fctP, 0.99), percentile(fctH, 0.99), budget.FCTP99Rel),
	}
	util := FluidMetric{Name: "link-util", Packet: pktBits, Err: l1 / math.Max(pktBits, 1),
		Budget: budget.LinkUtilRel}
	util.OK = util.Err <= util.Budget
	ms = append(ms, util)
	return ms
}

// CheckFluid runs one scenario's hybrid-fidelity check: determinism of
// the hybrid run across every configured engine count, plus — on
// churn-free scenarios — the error budget against the pure-packet
// reference. Churn scenarios skip the budget (packet TCP under loss and
// the loss-free fluid model measure different things there; what churn
// pins is that hybrid reconvergence stays engine-count-independent).
func CheckFluid(sc Scenario, budget FluidBudget) (*FluidReport, error) {
	if sc.FluidMinBytes <= 0 {
		sc = Fluid(sc)
	}
	hb, err := buildBundle(sc)
	if err != nil {
		return nil, err
	}
	if hb.fluid == nil {
		// Seed drew no transfer over the threshold: nothing to check
		// beyond plain conformance, which the packet dimension owns.
		return &FluidReport{Scenario: sc}, nil
	}
	hybridRef, hybridRes, err := runOnce(hb, sc, 1, nil, core.MaxMLL, nil, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("simcheck: hybrid reference run: %w", err)
	}
	rep := &FluidReport{Scenario: sc, FluidFlows: len(hb.fluidOf), HybridRef: hybridRef}

	var prof *profile.Profile
	if sc.Approach.ProfileBased() {
		prof = profile.FromResult(hybridRes, sc.Horizon)
	}
	for _, k := range sc.Ks {
		m, err := core.Map(hb.net, sc.Approach, core.Config{Engines: k, Seed: sc.Seed}, prof)
		if err != nil {
			return nil, fmt.Errorf("simcheck: map k=%d: %w", k, err)
		}
		window := m.MLL
		if window > core.MaxMLL {
			window = core.MaxMLL
		}
		inv := &pdes.Invariants{}
		obs, res, err := runOnce(hb, sc, k, m.Part, window, inv, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("simcheck: hybrid run k=%d: %w", k, err)
		}
		rep.Runs = append(rep.Runs, KRun{
			K: k, Window: window, Windows: res.Windows, MLL: m.MLL,
			Obs: obs, Divergences: Diff(hybridRef, obs), Violations: inv.Violations(),
		})
	}

	if sc.ChurnEvents == 0 && sc.Faults == nil {
		scp := sc
		scp.FluidMinBytes, scp.FluidQuantumNS = 0, 0
		pb, err := buildBundle(scp)
		if err != nil {
			return nil, err
		}
		packetRef, _, err := runOnce(pb, scp, 1, nil, core.MaxMLL, nil, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("simcheck: packet reference run: %w", err)
		}
		rep.PacketRef = packetRef
		rep.Metrics = fluidMetrics(hb, sc, packetRef, hybridRef, budget)
	}
	return rep, nil
}
