// Package simcheck is the sequential-vs-parallel conformance oracle: it
// generates seeded random scenarios (topology, traffic mix, partition
// count, mapping approach), runs each one sequentially (N=1) and in
// parallel (N=k), and diffs the full per-flow/per-router statistics. The
// conservative engine is supposed to be *observably equivalent* to the
// sequential DES it speeds up — MaSSF inherits DaSSF semantics — so any
// divergence is a bug in the exchange/lookahead machinery, the partition,
// or a model that secretly depends on engine count. Runs execute with the
// pdes runtime invariant hooks attached, so causality violations are
// reported directly with their window/engine/event coordinates rather
// than only as downstream stat drift.
package simcheck

import (
	"fmt"
	"math/rand"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/faults"
	"massf/internal/mabrite"
	"massf/internal/model"
	"massf/internal/netsim"
	"massf/internal/routing/interdomain"
	"massf/internal/scache"
	"massf/internal/topology"
)

// Scenario is one generated conformance case. Every field derives
// deterministically from Seed (see NewScenario), so a failing seed is a
// complete reproducer; fields are exported so the shrinker and tests can
// construct reduced variants directly.
type Scenario struct {
	Seed    int64
	MultiAS bool
	// Flat topology (MultiAS false).
	Routers int
	// Multi-AS topology (MultiAS true).
	ASes, RoutersPerAS int
	Hosts              int
	// Traffic mix: scripted TCP transfers, scripted UDP datagrams, and
	// optional background HTTP clients/servers.
	TCPFlows, UDPSends       int
	HTTPClients, HTTPServers int
	Horizon                  des.Time
	// Approach maps the network onto k engines for the parallel runs.
	Approach core.Approach
	// Ks lists the parallel engine counts to compare against N=1.
	Ks []int
	// Fault churn: ChurnEvents > 0 generates a ChurnSeed-seeded fault
	// script at build time, injected identically into the reference and
	// every parallel run — the churn conformance dimension proves routing
	// reconvergence is engine-count-independent too. An explicit Faults
	// script wins over generation (the shrinker materializes one so a
	// reproducer's JSON carries the exact fault timeline).
	ChurnEvents int            `json:",omitempty"`
	ChurnSeed   int64          `json:",omitempty"`
	Faults      *faults.Script `json:",omitempty"`
	// NetSample > 0 attaches the netmon observability plane to every run
	// of the scenario, path-sampling every NetSample-th packet. Used by
	// the observer-neutrality dimension: instrumented runs must produce
	// byte-identical Observations (netmon output itself is excluded from
	// the diff — it is observation, not model state).
	NetSample int `json:",omitempty"`
	// FluidMinBytes > 0 runs the scenario at hybrid fidelity: scripted
	// TCP transfers of at least this many bytes move to the analytic
	// fluid plane (max-min fair-share rates per link-share epoch) while
	// everything else stays packet-level. The hybrid-fidelity dimension
	// proves the plane is engine-count-independent (byte-identical
	// Observations across k) and, separately, within the error budget of
	// the pure-packet run of the same scenario (see CheckFluid).
	FluidMinBytes int64 `json:",omitempty"`
	// FluidQuantumNS > 0 batches fluid rate recomputation onto this grid
	// (the scale knob); 0 recomputes exactly at every flow start/finish.
	FluidQuantumNS int64 `json:",omitempty"`
}

// DefaultFluidMinBytes is the scripted-TCP fluidization threshold the
// -fluid dimension uses: transfers this large are "bulk" (many RTTs, rate
// dominated by fair-share bandwidth, which the fluid model captures);
// smaller transfers are latency-dominated and stay packet-level.
const DefaultFluidMinBytes = 30_000

// Fluid returns sc with the hybrid-fidelity dimension enabled at the
// default fluidization threshold.
func Fluid(sc Scenario) Scenario {
	sc.FluidMinBytes = DefaultFluidMinBytes
	return sc
}

// NewScenario derives a scenario from a seed. The distribution covers both
// topology families, all three mapping families (RANDOM / topology-based /
// profile-based hierarchical), and mixed TCP+UDP+HTTP traffic. RANDOM
// mappings get short horizons: a random cut's MLL can sit at the latency
// model's 10 µs floor, so its window count per simulated second is three
// orders of magnitude above a TOP2/HPROF cut's.
func NewScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{Seed: seed, Ks: []int{2, 4, 8}}
	sc.MultiAS = rng.Intn(3) == 0
	if sc.MultiAS {
		sc.ASes = 4 + rng.Intn(4)
		sc.RoutersPerAS = 8 + rng.Intn(7)
		sc.Hosts = 24 + rng.Intn(17)
	} else {
		sc.Routers = 40 + rng.Intn(61)
		sc.Hosts = 30 + rng.Intn(31)
	}
	sc.TCPFlows = 8 + rng.Intn(17)
	sc.UDPSends = 8 + rng.Intn(25)
	if rng.Intn(2) == 0 {
		sc.HTTPClients = 2 + rng.Intn(3)
		sc.HTTPServers = 2
	}
	switch rng.Intn(3) {
	case 0:
		sc.Approach = core.RANDOM
		sc.Horizon = des.Time(60+rng.Intn(90)) * des.Millisecond
	case 1:
		sc.Approach = core.TOP2
		sc.Horizon = des.Time(400+rng.Intn(400)) * des.Millisecond
	default:
		sc.Approach = core.HPROF
		sc.Horizon = des.Time(400+rng.Intn(400)) * des.Millisecond
	}
	return sc
}

// Churn returns sc with seeded fault churn enabled: 3–6 fault incidents
// whose script derives deterministically from the scenario seed.
func Churn(sc Scenario) Scenario {
	rng := rand.New(rand.NewSource(sc.Seed ^ 0xfa017c4a2))
	sc.ChurnEvents = 3 + rng.Intn(4)
	sc.ChurnSeed = rng.Int63()
	return sc
}

// effectiveFaults resolves the fault script every run of this scenario
// shares: the explicit script if set, else seeded generation.
func (sc Scenario) effectiveFaults(net *model.Network) *faults.Script {
	if sc.Faults != nil {
		return sc.Faults
	}
	if sc.ChurnEvents <= 0 {
		return nil
	}
	return faults.Generate(net, faults.GenOptions{
		Seed: sc.ChurnSeed, Events: sc.ChurnEvents, Horizon: sc.Horizon,
	})
}

// Materialized converts seeded churn into the explicit Faults script it
// generates, so a serialized reproducer carries the exact fault timeline
// instead of a (seed, count) recipe tied to this binary's generator.
func (sc Scenario) Materialized() (Scenario, error) {
	if sc.Faults != nil || sc.ChurnEvents <= 0 {
		return sc, nil
	}
	net, _, _, err := sc.Build()
	if err != nil {
		return sc, err
	}
	sc.Faults = sc.effectiveFaults(net)
	sc.ChurnEvents, sc.ChurnSeed = 0, 0
	return sc, nil
}

// String is the one-line form used in reports.
func (sc Scenario) String() string {
	topo := fmt.Sprintf("flat(r=%d,h=%d)", sc.Routers, sc.Hosts)
	if sc.MultiAS {
		topo = fmt.Sprintf("multi-as(as=%d,r/as=%d,h=%d)", sc.ASes, sc.RoutersPerAS, sc.Hosts)
	}
	churn := ""
	if sc.Faults != nil {
		churn = fmt.Sprintf(" faults=%d", len(sc.Faults.Events))
	} else if sc.ChurnEvents > 0 {
		churn = fmt.Sprintf(" churn=%d", sc.ChurnEvents)
	}
	fluid := ""
	if sc.FluidMinBytes > 0 {
		fluid = fmt.Sprintf(" fluid≥%d", sc.FluidMinBytes)
	}
	return fmt.Sprintf("seed=%d %s %s tcp=%d udp=%d http=%d horizon=%v%s%s ks=%v",
		sc.Seed, topo, sc.Approach, sc.TCPFlows, sc.UDPSends, sc.HTTPClients, sc.Horizon, churn, fluid, sc.Ks)
}

// buildNet generates just the scenario's topology — the part of Build a
// cached scenario artifact replaces (internal/scache stores its encoded
// form keyed by topoKey).
func (sc Scenario) buildNet() (*model.Network, error) {
	if sc.MultiAS {
		return mabrite.Generate(mabrite.Options{
			ASes: sc.ASes, RoutersPerAS: sc.RoutersPerAS, Hosts: sc.Hosts, Seed: sc.Seed,
		})
	}
	return topology.GenerateFlat(topology.FlatOptions{
		Routers: sc.Routers, Hosts: sc.Hosts, Seed: sc.Seed,
	})
}

// topoKey is the content address of the scenario's generated topology: the
// exact generator inputs, hashed. Scenarios differing only in traffic,
// horizon, or engine counts share the artifact — they run on the same
// network.
func (sc Scenario) topoKey() string {
	return scache.Key([]byte(fmt.Sprintf(
		"simcheck/topo/v1 multias=%v routers=%d ases=%d r/as=%d hosts=%d seed=%d",
		sc.MultiAS, sc.Routers, sc.ASes, sc.RoutersPerAS, sc.Hosts, sc.Seed)))
}

// hostsOf lists the traffic endpoints of a scenario network.
func hostsOf(net *model.Network) []model.NodeID {
	var hosts []model.NodeID
	for i := range net.Nodes {
		if net.Nodes[i].Kind == model.Host {
			hosts = append(hosts, model.NodeID(i))
		}
	}
	return hosts
}

// Build constructs the scenario's network, routing (with caches pre-warmed
// for every host, so the parallel run does not race lazy route
// computation), and the host list traffic endpoints draw from.
func (sc Scenario) Build() (*model.Network, netsim.Routes, []model.NodeID, error) {
	net, err := sc.buildNet()
	if err != nil {
		return nil, nil, nil, err
	}
	router := interdomain.New(net)
	hosts := hostsOf(net)
	if len(hosts) < 4 {
		return nil, nil, nil, fmt.Errorf("simcheck: scenario generated only %d hosts", len(hosts))
	}
	router.Prepare(hosts)
	return net, router, hosts, nil
}

// tcpSpec / udpSpec are scripted traffic entries. The script is derived
// from the seed once and replayed identically into the sequential and
// every parallel run.
type tcpSpec struct {
	at       des.Time
	src, dst model.NodeID
	bytes    int64
}

type udpSpec struct {
	at       des.Time
	src, dst model.NodeID
	bytes    int64
}

// pick returns two distinct hosts.
func pick(rng *rand.Rand, hosts []model.NodeID) (model.NodeID, model.NodeID) {
	a := rng.Intn(len(hosts))
	b := rng.Intn(len(hosts) - 1)
	if b >= a {
		b++
	}
	return hosts[a], hosts[b]
}

// script derives the deterministic traffic script. Start times land in the
// first half of the horizon so most transfers complete before the end.
func (sc Scenario) script(hosts []model.NodeID) ([]tcpSpec, []udpSpec) {
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x7eaff1c5eed))
	tcp := make([]tcpSpec, sc.TCPFlows)
	for i := range tcp {
		src, dst := pick(rng, hosts)
		tcp[i] = tcpSpec{
			at:    des.Time(rng.Int63n(int64(sc.Horizon / 2))),
			src:   src,
			dst:   dst,
			bytes: 2000 + rng.Int63n(120_000),
		}
	}
	udp := make([]udpSpec, sc.UDPSends)
	for i := range udp {
		src, dst := pick(rng, hosts)
		udp[i] = udpSpec{
			at:    des.Time(rng.Int63n(int64(sc.Horizon / 2))),
			src:   src,
			dst:   dst,
			bytes: 200 + rng.Int63n(1200),
		}
	}
	return tcp, udp
}

// httpEndpoints carves the background-HTTP client and server hosts off the
// tail of the host list (the scripted flows draw from the whole list;
// overlap is fine — hosts multiplex).
func (sc Scenario) httpEndpoints(hosts []model.NodeID) (clients, servers []model.NodeID) {
	if sc.HTTPClients == 0 || len(hosts) < sc.HTTPClients+sc.HTTPServers {
		return nil, nil
	}
	n := len(hosts)
	return hosts[n-sc.HTTPClients:], hosts[n-sc.HTTPClients-sc.HTTPServers : n-sc.HTTPClients]
}
