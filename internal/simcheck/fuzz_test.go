package simcheck

import (
	"testing"

	"massf/internal/des"
)

// FuzzScenarioEquivalence feeds arbitrary seeds through the scenario
// generator and runs the sequential-vs-parallel oracle on a size-capped
// variant (one engine count, few flows, short horizon) so each execution
// stays cheap. Any divergence or invariant violation is a real conformance
// bug: the seed in the crasher reproduces it via `simcheck -repro`.
func FuzzScenarioEquivalence(f *testing.F) {
	f.Add(int64(1), byte(0))
	f.Add(int64(7), byte(1))
	f.Add(int64(42), byte(2))
	f.Fuzz(func(t *testing.T, seed int64, kSel byte) {
		sc := NewScenario(seed)
		sc.Ks = []int{[]int{2, 4, 8}[int(kSel)%3]}
		if sc.TCPFlows > 8 {
			sc.TCPFlows = 8
		}
		if sc.UDPSends > 8 {
			sc.UDPSends = 8
		}
		sc.HTTPClients, sc.HTTPServers = 0, 0
		if sc.Horizon > 200*des.Millisecond {
			sc.Horizon = 200 * des.Millisecond
		}
		if sc.MultiAS {
			if sc.ASes > 4 {
				sc.ASes = 4
			}
			if sc.RoutersPerAS > 8 {
				sc.RoutersPerAS = 8
			}
		} else if sc.Routers > 50 {
			sc.Routers = 50
		}
		if sc.Hosts > 20 {
			sc.Hosts = 20
		}
		rep, err := Check(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		for i := range rep.Runs {
			kr := &rep.Runs[i]
			if len(kr.Violations) > 0 {
				t.Fatalf("%s k=%d: invariant violation: %v", sc, kr.K, kr.Violations[0])
			}
			if len(kr.Divergences) > 0 {
				t.Fatalf("%s k=%d: diverged from sequential reference: %v (window %d of %d)",
					sc, kr.K, kr.Divergences[0], kr.DivergentWindow(), kr.Windows)
			}
		}
	})
}
