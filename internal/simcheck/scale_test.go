package simcheck

import (
	"os"
	"testing"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/dist"
)

// TestScale100kDistributedRun demonstrates the slice refactor's headline
// capability: a 100,000-router multi-AS scenario distributed over a k=4
// sliced worker fleet completes. No sequential reference or replicated
// fleet runs here — at this scale those are exactly the legs slicing
// exists to avoid — so the assertion is completion plus sane merged
// accounting, not a byte-for-byte diff (that equivalence is pinned at
// checkable scale by CheckSharded / `simcheck -shard`).
//
// Heavy (minutes, several GB): gated behind MASSF_SCALE=1.
func TestScale100kDistributedRun(t *testing.T) {
	if os.Getenv("MASSF_SCALE") != "1" {
		t.Skip("100k-router scale run only runs with MASSF_SCALE=1")
	}
	sc := Scenario{
		Seed: 11, MultiAS: true, ASes: 50, RoutersPerAS: 2000, Hosts: 2000,
		TCPFlows: 64, UDPSends: 64,
		Horizon:  200 * des.Millisecond,
		Approach: core.TOP2, Ks: []int{4},
	}
	cacheDir := t.TempDir()
	net, err := scenarioNet(&distSpec{Scenario: sc, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("topology: %d nodes (%d routers), %d links", len(net.Nodes), net.NumRouters(), len(net.Links))
	m, err := core.Map(net, sc.Approach, core.Config{Engines: 4, Seed: sc.Seed}, nil)
	if err != nil {
		t.Fatal(err)
	}
	window := m.MLL
	if window > core.MaxMLL {
		window = core.MaxMLL
	}
	plan := &distPlan{sc: sc, net: net, k: 4, workers: 4, part: m.Part, window: window}
	rc, err := plan.runConfig(true, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	res, parts, merged, err := serveFleet(rc, 4, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		t.Logf("worker %d (%s): %d owned nodes, build %.1fs, route tables %.1f MiB, heap %.1f MiB, peak RSS %.1f MiB",
			i, res.Names[i], p.SliceNodes, float64(p.BuildNS)/1e9,
			float64(p.RouteBytes)/(1<<20), float64(p.HeapInuse)/(1<<20), float64(p.PeakRSS)/(1<<20))
		if p.SliceNodes <= 0 || p.SliceNodes >= len(net.Nodes) {
			t.Errorf("worker %d materialized %d nodes — not a proper slice of %d", i, p.SliceNodes, len(net.Nodes))
		}
	}
	if merged.TotalEvents == 0 {
		t.Error("merged observation has zero events — the fleet simulated nothing")
	}
	if merged.FlowsStarted == 0 {
		t.Error("no flows started across the fleet")
	}
}
