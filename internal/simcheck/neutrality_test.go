package simcheck

import (
	"reflect"
	"testing"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/dist"
	"massf/internal/netmon"
)

// neutralityScenario is the fixed case the observer-neutrality dimension
// exercises: flat topology, mixed TCP+UDP, mapped on TOP2 so k=4 hosts
// flows that cross engine boundaries.
func neutralityScenario() Scenario {
	return Scenario{
		Seed: 11, Routers: 40, Hosts: 30,
		TCPFlows: 10, UDPSends: 10,
		Horizon: 150 * des.Millisecond, Approach: core.TOP2, Ks: []int{4},
	}
}

// TestCheckNeutrality: attaching the netmon plane perturbs nothing — the
// instrumented sequential and k=4 observations match the uninstrumented
// reference byte for byte, the sampled span sets agree across
// partitionings, and every sampled path walks the route table.
func TestCheckNeutrality(t *testing.T) {
	if testing.Short() {
		t.Skip("neutrality oracle run skipped in -short")
	}
	rep, err := CheckNeutrality(neutralityScenario(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.DivsSeq {
		t.Errorf("instrumented sequential run diverged: %v", d)
	}
	for _, d := range rep.DivsPar {
		t.Errorf("instrumented k=4 run diverged: %v", d)
	}
	if rep.SpansDiverge {
		t.Errorf("sampling depends on the partition: %d seq vs %d par spans",
			rep.SeqSpans, rep.ParSpans)
	}
	if rep.ParSpans == 0 || len(rep.Paths) == 0 {
		t.Fatalf("instrumentation recorded nothing: %s", rep)
	}
	crossEngine := 0
	for _, p := range rep.Paths {
		if p.Err != "" {
			t.Errorf("trace %#x violates the route table: %s", p.Trace, p.Err)
		}
		if len(p.Engines) > 1 {
			crossEngine++
		}
	}
	if rep.Complete == 0 {
		t.Error("no sampled path reached its destination")
	}
	if crossEngine == 0 {
		t.Error("no sampled path crossed an engine boundary at k=4")
	}
}

// TestNeutralityDistributed: the distributed leg of the dimension — an
// instrumented scenario split across loopback workers still matches its
// uninstrumented sequential reference, and the spans merged from the
// worker partials are exactly the spans the in-process k=4 run recorded.
func TestNeutralityDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed neutrality run skipped in -short")
	}
	sc := neutralityScenario()
	sc.NetSample = 3
	rep, err := CheckDistributed(sc, 4, 2, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.DivsInProc {
		t.Errorf("in-process k=4: %v", d)
	}
	for _, d := range rep.DivsDist {
		t.Errorf("distributed: %v", d)
	}
	if len(rep.InProc.PathSpans) == 0 {
		t.Fatal("instrumented run sampled no spans")
	}
	if !reflect.DeepEqual(rep.InProc.PathSpans, rep.Dist.PathSpans) {
		t.Fatalf("merged worker spans differ from in-process spans: %d vs %d",
			len(rep.Dist.PathSpans), len(rep.InProc.PathSpans))
	}
	// The merged spans stitch into route-conformant paths, at least one of
	// them crossing a worker boundary (engines 0–1 vs 2–3 at workers=2).
	nw, routes, _, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	stitched := 0
	for _, p := range AuditTraces(nw, routes, rep.Dist.PathSpans) {
		if p.Err != "" {
			t.Errorf("trace %#x: %s", p.Trace, p.Err)
		}
		if p.Complete && (minEngine(p.Engines) < 2 && maxEngine(p.Engines) >= 2) {
			stitched++
		}
	}
	if stitched == 0 {
		t.Error("no complete path stitched across the two workers")
	}
}

func minEngine(es []int) int { return es[0] }
func maxEngine(es []int) int { return es[len(es)-1] }

// TestMergeObservationsPathSpans: worker span partials concatenate and
// come back in canonical order.
func TestMergeObservationsPathSpans(t *testing.T) {
	a := &Observation{PathSpans: []netmon.HopSpan{
		{Trace: 9, Start: 5, Node: 1, Engine: 0},
	}}
	b := &Observation{PathSpans: []netmon.HopSpan{
		{Trace: 9, Start: 2, Node: 0, Engine: 1},
		{Trace: 2, Start: 7, Node: 3, Engine: 1},
	}}
	m, err := MergeObservations([]*Observation{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PathSpans) != 3 {
		t.Fatalf("got %d spans, want 3", len(m.PathSpans))
	}
	if m.PathSpans[0].Trace != 2 || m.PathSpans[1].Start != 2 || m.PathSpans[2].Start != 5 {
		t.Fatalf("spans not in canonical order: %+v", m.PathSpans)
	}
}
