package simcheck

import (
	"testing"

	"massf/internal/des"
	"massf/internal/dist"
)

// TestFluidCheckPassesBudgetAndDeterminism is the hybrid-fidelity
// acceptance sweep in miniature: seeded scenarios run hybrid must be
// byte-identical across engine counts AND within the error budget of
// their pure-packet twins.
func TestFluidCheckPassesBudgetAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fluid oracle sweep skipped in -short")
	}
	for seed := int64(1); seed <= 4; seed++ {
		sc := Fluid(NewScenario(seed))
		sc.Ks = []int{2, 4}
		rep, err := CheckFluid(sc, DefaultFluidBudget())
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if rep.FluidFlows == 0 {
			t.Fatalf("%s: no scripted transfer crossed the fluidization threshold", sc)
		}
		if rep.HybridRef.FluidCompleted == 0 {
			t.Fatalf("%s: no fluid flow completed", sc)
		}
		for i := range rep.Runs {
			kr := &rep.Runs[i]
			for _, v := range kr.Violations {
				t.Errorf("%s k=%d: invariant violation: %v", sc, kr.K, v)
			}
			for _, d := range kr.Divergences {
				t.Errorf("%s k=%d: hybrid divergence: %v", sc, kr.K, d)
			}
		}
		if len(rep.Metrics) == 0 {
			t.Fatalf("%s: churn-free check computed no budget metrics", sc)
		}
		for _, m := range rep.Metrics {
			if !m.OK {
				t.Errorf("%s: over budget: %v", sc, m)
			}
		}
	}
}

// TestFluidChurnDeterminism pins hybrid × faults: a churn scenario run
// hybrid reconverges identically on every engine count (the N=1 ≡ N=k
// determinism test for the fault-aware fluid timeline). The budget is
// deliberately not enforced — what churn pins is engine-count
// independence, including the fluid plane's stall/reroute behavior.
func TestFluidChurnDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fluid churn sweep skipped in -short")
	}
	for seed := int64(1); seed <= 3; seed++ {
		sc := Churn(Fluid(NewScenario(seed)))
		sc.Ks = []int{2, 4}
		rep, err := CheckFluid(sc, DefaultFluidBudget())
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if rep.Metrics != nil {
			t.Fatalf("%s: churn scenario must skip the budget", sc)
		}
		for i := range rep.Runs {
			kr := &rep.Runs[i]
			for _, v := range kr.Violations {
				t.Errorf("%s k=%d: invariant violation: %v", sc, kr.K, v)
			}
			for _, d := range kr.Divergences {
				t.Errorf("%s k=%d: hybrid churn divergence: %v", sc, kr.K, d)
			}
		}
	}
}

// TestFluidQuantumDeterminism: quantum-batched rate recomputation is an
// approximation of the exact solve, but it must be the SAME
// approximation everywhere — byte-identical across engine counts.
func TestFluidQuantumDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fluid quantum sweep skipped in -short")
	}
	sc := Fluid(NewScenario(2))
	sc.FluidQuantumNS = int64(des.Millisecond)
	sc.Ks = []int{2, 4}
	rep, err := CheckFluid(sc, DefaultFluidBudget())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FluidFlows == 0 {
		t.Fatal("no fluid flows")
	}
	for i := range rep.Runs {
		for _, d := range rep.Runs[i].Divergences {
			t.Errorf("k=%d: quantum hybrid divergence: %v", rep.Runs[i].K, d)
		}
	}
}

// TestFluidDistributed: the hybrid run split across loopback-TCP worker
// processes (replicated setup — every worker precomputes the identical
// fluid plane) matches the sequential hybrid reference byte for byte,
// fluid counters included.
func TestFluidDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed fluid run skipped in -short")
	}
	sc := Fluid(distScenario())
	rep, err := CheckDistributed(sc, 4, 2, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ref.FluidStarted == 0 || rep.Ref.FluidCompleted == 0 {
		t.Fatalf("degenerate hybrid reference: started=%d completed=%d",
			rep.Ref.FluidStarted, rep.Ref.FluidCompleted)
	}
	for _, d := range rep.DivsInProc {
		t.Errorf("in-process k=4: %v", d)
	}
	for _, d := range rep.DivsDist {
		t.Errorf("distributed: %v", d)
	}
}

// TestFluidMergeObservations covers the fluid-field merge rules: counters
// and link volumes sum, FluidLastCompletion takes the max.
func TestFluidMergeObservations(t *testing.T) {
	a := &Observation{
		TCPDone: []des.Time{1}, TCPRecv: []des.Time{1}, UDPRecv: []des.Time{},
		NodeEvents: []uint64{1}, LinkBits: []uint64{8}, LinkDrops: []uint64{0},
		FluidStarted: 2, FluidCompleted: 1, FluidDeliveredBits: 100,
		FluidLastCompletion: 5, FluidLinkBits: []uint64{40, 0},
	}
	b := &Observation{
		TCPDone: []des.Time{0}, TCPRecv: []des.Time{0}, UDPRecv: []des.Time{},
		NodeEvents: []uint64{2}, LinkBits: []uint64{4}, LinkDrops: []uint64{0},
		FluidStarted: 1, FluidCompleted: 2, FluidDeliveredBits: 50,
		FluidLastCompletion: 9, FluidLinkBits: []uint64{0, 60},
	}
	m, err := MergeObservations([]*Observation{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.FluidStarted != 3 || m.FluidCompleted != 3 || m.FluidDeliveredBits != 150 {
		t.Fatalf("fluid counters merged wrong: %+v", m)
	}
	if m.FluidLastCompletion != 9 {
		t.Fatalf("FluidLastCompletion = %v, want 9", m.FluidLastCompletion)
	}
	if m.FluidLinkBits[0] != 40 || m.FluidLinkBits[1] != 60 {
		t.Fatalf("FluidLinkBits = %v", m.FluidLinkBits)
	}
}
