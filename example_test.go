package massf_test

import (
	"fmt"

	"massf"
)

// ExampleMap shows the hierarchical profile-free mapping of a network onto
// simulation engines and the conservative window it guarantees.
func ExampleMap() {
	net, err := massf.GenerateFlat(massf.FlatOptions{Routers: 400, Hosts: 50, Seed: 7})
	if err != nil {
		panic(err)
	}
	m, err := massf.Map(net, massf.HTOP, massf.MappingConfig{Engines: 8, Seed: 1}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("approach:", m.Approach)
	fmt.Println("engines used:", len(m.EstLoad))
	fmt.Println("MLL exceeds sync cost:", m.MLL > massf.Time(massf.TeraGridSync().SyncCost(8)))
	// Output:
	// approach: HTOP
	// engines used: 8
	// MLL exceeds sync cost: true
}

// ExampleNewSimulation runs a minimal parallel simulation end to end.
func ExampleNewSimulation() {
	net, err := massf.GenerateFlat(massf.FlatOptions{Routers: 100, Hosts: 20, Seed: 3})
	if err != nil {
		panic(err)
	}
	sim, err := massf.NewSimulation(massf.SimConfig{
		Net: net, Routes: massf.NewRouting(net), Engines: 1,
		Window: massf.MaxMLL, End: 2 * massf.Second, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	var hosts []massf.NodeID
	for i := range net.Nodes {
		if net.Nodes[i].Kind == massf.Host {
			hosts = append(hosts, massf.NodeID(i))
		}
	}
	done := false
	sim.StartFlow(0, hosts[0], hosts[1], 50_000, func(massf.Time) { done = true })
	res := sim.Run()
	fmt.Println("flow completed:", done)
	fmt.Println("events processed:", res.TotalEvents > 0)
	// Output:
	// flow completed: true
	// events processed: true
}

// ExampleRunBeacon demonstrates the dynamic BGP study: withdrawing and
// re-announcing a prefix, observing reachability flip.
func ExampleRunBeacon() {
	net, err := massf.GenerateMultiAS(massf.MultiASOptions{ASes: 8, RoutersPerAS: 3, Seed: 2})
	if err != nil {
		panic(err)
	}
	cycles := massf.RunBeacon(net, 3, 1)
	c := cycles[0]
	fmt.Println("reachable after withdraw:", c.ReachableAfterWithdraw)
	fmt.Println("everyone back after announce:", c.ReachableAfterAnnounce == len(net.ASes)-1)
	// Output:
	// reachable after withdraw: 0
	// everyone back after announce: true
}
