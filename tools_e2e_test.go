package massf_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestToolsEndToEnd drives the command-line tools through the full
// documented workflow: generate a topology with mabrite, inspect a
// partition, run a profiling simulation with massf, and feed the profile
// back into an HPROF run — the PROF feedback loop, through the binaries.
func TestToolsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binaries")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"mabrite", "partition", "massf"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	netFile := filepath.Join(dir, "net.dml")
	profFile := filepath.Join(dir, "prof.txt")
	partFile := filepath.Join(dir, "part.txt")

	// 1. Generate a small multi-AS topology.
	run("mabrite", "-as", "6", "-routers-per-as", "15", "-hosts", "60", "-o", netFile, "-stats")
	if fi, err := os.Stat(netFile); err != nil || fi.Size() == 0 {
		t.Fatalf("mabrite produced no DML: %v", err)
	}

	// 2. Profiling pass on one engine, capture the profile.
	out := run("massf", "-net", netFile, "-approach", "RANDOM", "-engines", "1",
		"-seconds", "2", "-app", "gridnpb", "-profile-out", profFile)
	if !strings.Contains(out, "parallel efficiency") {
		t.Fatalf("massf output missing metrics:\n%s", out)
	}
	if fi, err := os.Stat(profFile); err != nil || fi.Size() == 0 {
		t.Fatalf("no profile captured: %v", err)
	}

	// 3. Partition with HPROF using the captured profile.
	out = run("partition", "-net", netFile, "-approach", "HPROF", "-engines", "4",
		"-profile", profFile, "-o", partFile)
	if !strings.Contains(out, "achieved MLL") || !strings.Contains(out, "E = Es·Ec") {
		t.Fatalf("partition output incomplete:\n%s", out)
	}
	data, err := os.ReadFile(partFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 6*15+60 {
		t.Fatalf("partition file has %d lines, want %d (one per node)", lines, 6*15+60)
	}

	// 4. Full HPROF simulation with the profile.
	out = run("massf", "-net", netFile, "-approach", "HPROF", "-engines", "4",
		"-seconds", "2", "-app", "scalapack", "-profile", profFile)
	for _, want := range []string{"approach             HPROF", "flows", "http", "app[0]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("massf HPROF output missing %q:\n%s", want, out)
		}
	}

	// 5. Flat (single-AS) generation path.
	flatFile := filepath.Join(dir, "flat.dml")
	run("mabrite", "-flat", "-routers", "80", "-hosts", "20", "-o", flatFile)
	out = run("partition", "-net", flatFile, "-approach", "HTOP", "-engines", "4")
	if !strings.Contains(out, "HTOP") {
		t.Fatalf("flat partition failed:\n%s", out)
	}

	// Error paths: unknown approach and missing file must fail.
	if err := exec.Command(bin("partition"), "-net", netFile, "-approach", "BOGUS").Run(); err == nil {
		t.Error("unknown approach accepted")
	}
	if err := exec.Command(bin("massf"), "-net", filepath.Join(dir, "missing.dml")).Run(); err == nil {
		t.Error("missing network file accepted")
	}
}
