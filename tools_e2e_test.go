package massf_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestToolsEndToEnd drives the command-line tools through the full
// documented workflow: generate a topology with mabrite, inspect a
// partition, run a profiling simulation with massf, and feed the profile
// back into an HPROF run — the PROF feedback loop, through the binaries.
func TestToolsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binaries")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"mabrite", "partition", "massf"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	netFile := filepath.Join(dir, "net.dml")
	profFile := filepath.Join(dir, "prof.txt")
	partFile := filepath.Join(dir, "part.txt")

	// 1. Generate a small multi-AS topology.
	run("mabrite", "-as", "6", "-routers-per-as", "15", "-hosts", "60", "-o", netFile, "-stats")
	if fi, err := os.Stat(netFile); err != nil || fi.Size() == 0 {
		t.Fatalf("mabrite produced no DML: %v", err)
	}

	// 2. Profiling pass on one engine, capture the profile.
	out := run("massf", "-net", netFile, "-approach", "RANDOM", "-engines", "1",
		"-seconds", "2", "-app", "gridnpb", "-profile-out", profFile)
	if !strings.Contains(out, "parallel efficiency") {
		t.Fatalf("massf output missing metrics:\n%s", out)
	}
	if fi, err := os.Stat(profFile); err != nil || fi.Size() == 0 {
		t.Fatalf("no profile captured: %v", err)
	}

	// 3. Partition with HPROF using the captured profile.
	out = run("partition", "-net", netFile, "-approach", "HPROF", "-engines", "4",
		"-profile", profFile, "-o", partFile)
	if !strings.Contains(out, "achieved MLL") || !strings.Contains(out, "E = Es·Ec") {
		t.Fatalf("partition output incomplete:\n%s", out)
	}
	data, err := os.ReadFile(partFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 6*15+60 {
		t.Fatalf("partition file has %d lines, want %d (one per node)", lines, 6*15+60)
	}

	// 4. Full HPROF simulation with the profile (via the -profile-in
	// alias), flight recorder armed: Chrome trace out plus the straggler
	// report.
	traceFile := filepath.Join(dir, "trace.json")
	out = run("massf", "-net", netFile, "-approach", "HPROF", "-engines", "4",
		"-seconds", "2", "-app", "scalapack", "-profile-in", profFile,
		"-trace", traceFile, "-stragglers", "2")
	for _, want := range []string{"approach             HPROF", "flows", "http", "app[0]",
		"trace ", "top stragglers:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("massf HPROF output missing %q:\n%s", want, out)
		}
	}
	traceData, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var traceDoc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			TID int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &traceDoc); err != nil {
		t.Fatalf("-trace wrote invalid JSON: %v", err)
	}
	tids := map[int]bool{}
	for _, ev := range traceDoc.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.TID] = true
		}
	}
	if len(tids) != 4 {
		t.Fatalf("trace has %d engine tracks, want 4", len(tids))
	}

	// 5. Flat (single-AS) generation path.
	flatFile := filepath.Join(dir, "flat.dml")
	run("mabrite", "-flat", "-routers", "80", "-hosts", "20", "-o", flatFile)
	out = run("partition", "-net", flatFile, "-approach", "HTOP", "-engines", "4")
	if !strings.Contains(out, "HTOP") {
		t.Fatalf("flat partition failed:\n%s", out)
	}

	// Error paths: unknown approach and missing file must fail.
	if err := exec.Command(bin("partition"), "-net", netFile, "-approach", "BOGUS").Run(); err == nil {
		t.Error("unknown approach accepted")
	}
	if err := exec.Command(bin("massf"), "-net", filepath.Join(dir, "missing.dml")).Run(); err == nil {
		t.Error("missing network file accepted")
	}
}

// TestMassfdSmoke boots the run-control daemon on an ephemeral port,
// submits a scenario over HTTP, waits for it to finish, checks the
// metric endpoints, and shuts the daemon down gracefully.
func TestMassfdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the massfd daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "massfd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/massfd").CombinedOutput(); err != nil {
		t.Fatalf("build massfd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its resolved address on the first line.
	sc := bufio.NewScanner(stderr)
	if !sc.Scan() {
		t.Fatalf("no startup line from massfd: %v", sc.Err())
	}
	m := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)`).FindStringSubmatch(sc.Text())
	if m == nil {
		t.Fatalf("no listen address in startup line %q", sc.Text())
	}
	base := "http://" + m[1]
	go io.Copy(io.Discard, stderr)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}

	spec := `{"name":"smoke","flat":{"routers":40,"hosts":20},"engines":2,"seconds":0.5,"app":"scalapack","seed":1}`
	resp, err := http.Post(base+"/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var info struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || info.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, info.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := get("/runs/" + info.ID)
		if err := json.Unmarshal([]byte(body), &info); err != nil {
			t.Fatalf("poll decode: %v (%s)", err, body)
		}
		if info.State == "done" {
			break
		}
		if info.State == "failed" || info.State == "cancelled" {
			t.Fatalf("run ended in state %s: %s", info.State, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in state %s", info.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	if code, body := get("/runs/" + info.ID + "/metrics?follow=0"); code != http.StatusOK || len(strings.TrimSpace(body)) == 0 {
		t.Fatalf("window dump: %d, %d bytes", code, len(body))
	}
	if _, body := get("/metrics"); !strings.Contains(body, "massf_sim_events_total") {
		t.Fatalf("aggregate metrics missing simulation counters:\n%.1000s", body)
	}

	// Flight recorder: the trace endpoint serves well-formed Chrome trace
	// JSON — complete ("X") events with strictly increasing slice starts
	// per engine track and all three window phases.
	code, body := get("/runs/" + info.ID + "/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: status %d", code)
	}
	var traceDoc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &traceDoc); err != nil {
		t.Fatalf("trace endpoint served invalid JSON: %v\n%.500s", err, body)
	}
	tracks := map[int]float64{}
	phases := map[string]bool{}
	for _, ev := range traceDoc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if prev, seen := tracks[ev.TID]; seen && ev.TS <= prev {
			t.Fatalf("track %d: slice starts not strictly increasing", ev.TID)
		}
		tracks[ev.TID] = ev.TS
		phases[ev.Name] = true
	}
	if len(tracks) != 2 {
		t.Fatalf("trace has %d engine tracks, want 2", len(tracks))
	}
	for _, ph := range []string{"compute", "barrier", "exchange"} {
		if !phases[ph] {
			t.Fatalf("trace missing %q slices", ph)
		}
	}

	// The measured profile of the finished run is served for feedback.
	if code, body := get("/runs/" + info.ID + "/profile"); code != http.StatusOK ||
		!strings.HasPrefix(body, "massf-profile v1") {
		t.Fatalf("profile endpoint: %d\n%.200s", code, body)
	}

	// Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("massfd exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("massfd did not shut down within 15s of SIGTERM")
	}
}
