package massf_test

import (
	"errors"
	"net"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/dist"
	"massf/internal/simcheck"
)

// buildMassfd compiles the massfd binary into a temp dir and returns its
// path.
func buildMassfd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "massfd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/massfd").CombinedOutput(); err != nil {
		t.Fatalf("build massfd: %v\n%s", err, out)
	}
	return bin
}

// distE2EScenario is the fixed conformance scenario the subprocess runs
// execute: every traffic type, partitioned on 4 engines.
func distE2EScenario() simcheck.Scenario {
	return simcheck.Scenario{
		Seed: 5, Routers: 40, Hosts: 30,
		TCPFlows: 12, UDPSends: 12, HTTPClients: 3, HTTPServers: 2,
		Horizon: 250 * des.Millisecond, Approach: core.TOP2, Ks: []int{4},
	}
}

// TestDistributedEndToEnd runs the full distributed pipeline through real
// process boundaries: the test acts as coordinator, two `massfd -worker`
// subprocesses each host half of a k=4 partition over loopback TCP, and the
// merged observables must be byte-identical to the in-process k=4 run and
// the sequential reference.
func TestDistributedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs massfd worker subprocesses")
	}
	bin := buildMassfd(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const workers = 2
	var wg sync.WaitGroup
	outs := make([][]byte, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		cmd := exec.Command(bin, "-worker", "-join", ln.Addr().String(),
			"-worker-name", "w"+string(rune('0'+i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], errs[i] = cmd.CombinedOutput()
		}()
	}

	rep, err := simcheck.ServeDistributed(ln, distE2EScenario(), 4, workers, dist.Options{})
	wg.Wait()
	if err != nil {
		for i := range outs {
			t.Logf("worker %d output:\n%s", i, outs[i])
		}
		t.Fatalf("distributed run failed: %v", err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d exited with error: %v\n%s", i, werr, outs[i])
		}
	}
	if rep.Ref.TotalEvents == 0 || rep.Ref.HTTPResponses == 0 {
		t.Fatalf("degenerate reference run: events=%d http=%d",
			rep.Ref.TotalEvents, rep.Ref.HTTPResponses)
	}
	for _, d := range rep.DivsInProc {
		t.Errorf("in-process k=4 divergence: %v", d)
	}
	for _, d := range rep.DivsDist {
		t.Errorf("distributed divergence: %v", d)
	}
	if len(rep.Names) != workers {
		t.Fatalf("coordinator saw workers %v, want %d", rep.Names, workers)
	}
}

// TestDistributedChurnEndToEnd is the subprocess variant of the churn
// conformance dimension: the same scripted link/router faults are compiled
// independently by the coordinator and by both massfd -worker processes
// (replicated setup), and the merged k=4 observables — per-fault loss
// attribution included — must match the sequential reference exactly.
func TestDistributedChurnEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs massfd worker subprocesses")
	}
	bin := buildMassfd(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const workers = 2
	var wg sync.WaitGroup
	outs := make([][]byte, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		cmd := exec.Command(bin, "-worker", "-join", ln.Addr().String(),
			"-worker-name", "w"+string(rune('0'+i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], errs[i] = cmd.CombinedOutput()
		}()
	}

	sc := simcheck.Churn(distE2EScenario())
	rep, err := simcheck.ServeDistributed(ln, sc, 4, workers, dist.Options{})
	wg.Wait()
	if err != nil {
		for i := range outs {
			t.Logf("worker %d output:\n%s", i, outs[i])
		}
		t.Fatalf("distributed churn run failed: %v", err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d exited with error: %v\n%s", i, werr, outs[i])
		}
	}
	if len(rep.Ref.FaultDrops) == 0 {
		t.Fatal("churn scenario compiled no fault plane")
	}
	for _, d := range rep.DivsInProc {
		t.Errorf("in-process k=4 divergence: %v", d)
	}
	for _, d := range rep.DivsDist {
		t.Errorf("distributed divergence: %v", d)
	}
}

// TestDistributedPathTraceEndToEnd is the subprocess variant of the
// observer-neutrality dimension: two real `massfd -worker` processes run
// an instrumented k=4 partition over loopback TCP, the merged observables
// must match the *uninstrumented* sequential reference (the plane observed
// without perturbing, even across the wire), the stitched spans must be
// byte-identical to the in-process run of the same partition, and the
// sampled paths must follow the routes actually in force — with at least
// one path crossing the worker boundary.
func TestDistributedPathTraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs massfd worker subprocesses")
	}
	bin := buildMassfd(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const workers = 2
	var wg sync.WaitGroup
	outs := make([][]byte, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		cmd := exec.Command(bin, "-worker", "-join", ln.Addr().String(),
			"-worker-name", "w"+string(rune('0'+i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], errs[i] = cmd.CombinedOutput()
		}()
	}

	sc := distE2EScenario()
	sc.NetSample = 3
	rep, err := simcheck.ServeDistributed(ln, sc, 4, workers, dist.Options{})
	wg.Wait()
	if err != nil {
		for i := range outs {
			t.Logf("worker %d output:\n%s", i, outs[i])
		}
		t.Fatalf("distributed instrumented run failed: %v", err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d exited with error: %v\n%s", i, werr, outs[i])
		}
	}
	for _, d := range rep.DivsInProc {
		t.Errorf("in-process instrumented divergence: %v", d)
	}
	for _, d := range rep.DivsDist {
		t.Errorf("distributed instrumented divergence: %v", d)
	}

	// Neutrality across the wire: diff the instrumented subprocess run
	// against the reference of the SAME scenario with the plane off.
	plain := sc
	plain.NetSample = 0
	plainRep, _, err := simcheck.PlanDistributed(plain, 4, workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range simcheck.Diff(plainRep.Ref, rep.Dist) {
		t.Errorf("instrumented wire run diverges from uninstrumented reference: %v", d)
	}

	// The wire changed nothing about the sampled spans either: every span a
	// worker shipped is byte-identical to the in-process run of the same
	// partition, recording engines included.
	if len(rep.Dist.PathSpans) == 0 {
		t.Fatal("workers shipped no path spans")
	}
	if !reflect.DeepEqual(rep.InProc.PathSpans, rep.Dist.PathSpans) {
		t.Fatalf("merged worker spans differ from the in-process run: %d vs %d spans",
			len(rep.Dist.PathSpans), len(rep.InProc.PathSpans))
	}

	// Every stitched path must follow the forwarding table; at least one
	// complete path must have spans recorded on both workers' engine ranges
	// (worker 0 hosts engines 0-1, worker 1 hosts 2-3).
	paths, err := simcheck.AuditScenarioTraces(sc, rep.Dist.PathSpans)
	if err != nil {
		t.Fatal(err)
	}
	complete, crossWorker := 0, 0
	for _, p := range paths {
		if p.Err != "" {
			t.Errorf("trace %d deviates from the route: %s", p.Trace, p.Err)
		}
		if !p.Complete {
			continue
		}
		complete++
		if len(p.Engines) > 0 && p.Engines[0] < 2 && p.Engines[len(p.Engines)-1] >= 2 {
			crossWorker++
		}
	}
	if complete == 0 {
		t.Fatal("no sampled path reached its destination")
	}
	if crossWorker == 0 {
		t.Fatalf("no complete path crossed the worker boundary (%d complete of %d)",
			complete, len(paths))
	}
}

// notifyListener counts accepted connections so the test can act once
// every worker has joined. SetDeadline forwards so the coordinator's join
// deadline still works through the wrapper.
type notifyListener struct {
	net.Listener
	accepted chan struct{}
}

func (l *notifyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepted <- struct{}{}
	}
	return c, err
}

func (l *notifyListener) SetDeadline(t time.Time) error {
	if d, ok := l.Listener.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// TestDistributedWorkerKillAttribution kills one worker subprocess mid-run:
// the coordinator must fail within the heartbeat timeout and name the dead
// worker, and the surviving worker must exit promptly on the abort.
func TestDistributedWorkerKillAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs massfd worker subprocesses")
	}
	bin := buildMassfd(t)
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tln.Close()
	ln := &notifyListener{Listener: tln, accepted: make(chan struct{}, 4)}

	// A RANDOM-approach scenario sits at the latency floor, so the run
	// spans tens of thousands of barrier windows (~30 µs each over
	// loopback) — the post-join run lasts on the order of a second.
	sc := distE2EScenario()
	sc.Approach = core.RANDOM
	sc.Horizon = 2 * des.Second

	victim := exec.Command(bin, "-worker", "-join", tln.Addr().String(), "-worker-name", "victim")
	survivor := exec.Command(bin, "-worker", "-join", tln.Addr().String(), "-worker-name", "survivor")
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	defer victim.Process.Kill()
	if err := survivor.Start(); err != nil {
		t.Fatal(err)
	}
	defer survivor.Process.Kill()

	opt := dist.Options{HeartbeatTimeout: 1500 * time.Millisecond}
	killed := make(chan time.Time, 1)
	go func() {
		// Both workers joined; give the run a head start into its windows,
		// then kill one far from any protocol boundary.
		<-ln.accepted
		<-ln.accepted
		time.Sleep(150 * time.Millisecond)
		victim.Process.Kill()
		killed <- time.Now()
	}()

	_, err = simcheck.ServeDistributed(ln, sc, 4, 2, opt)
	failedAt := time.Now()
	if err == nil {
		t.Fatal("coordinator did not fail after a worker was killed")
	}
	var werr *dist.WorkerError
	if !errors.As(err, &werr) {
		t.Fatalf("error does not attribute a worker: %v", err)
	}
	if werr.Name != "victim" {
		t.Fatalf("failure attributed to %q, want \"victim\": %v", werr.Name, err)
	}
	if elapsed := failedAt.Sub(<-killed); elapsed > opt.HeartbeatTimeout+2*time.Second {
		t.Fatalf("failure took %v after the kill, want within the %v heartbeat timeout",
			elapsed, opt.HeartbeatTimeout)
	}

	// The abort frame must release the survivor — it exits on its own, no
	// kill needed.
	done := make(chan error, 1)
	go func() { done <- survivor.Wait() }()
	select {
	case <-done:
		// Non-zero exit is expected: the worker reports the aborted run.
	case <-time.After(10 * time.Second):
		t.Fatal("surviving worker did not exit after the coordinator aborted the run")
	}
}
