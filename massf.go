// Package massf is a realistic large-scale online network simulator — a Go
// reproduction of MaSSF, the parallel network simulation engine of the
// MicroGrid system (Liu & Chien, "Realistic Large-Scale Online Network
// Simulation", SC 2004).
//
// It provides, behind one facade:
//
//   - Topology generation: single-AS power-law networks (BRITE-style) and
//     Internet-like multi-AS networks with automatically configured BGP
//     routing policies (maBrite).
//   - Routing: intra-domain OSPF shortest paths and inter-domain BGP4
//     policy routing (customer/peer/provider preferences, no-valley
//     export).
//   - A packet-level network simulator (IP forwarding, drop-tail queues,
//     TCP Reno/UDP transport) on a conservative parallel discrete event
//     engine whose engine nodes advance in minimum-link-latency windows.
//   - The paper's load-balance mapping family — TOP, TOP2, PROF, PROF2 and
//     the hierarchical HTOP and HPROF — built on a from-scratch multilevel
//     k-way graph partitioner.
//   - Traffic models (HTTP background; ScaLapack and GridNPB foreground
//     applications), metrics (achieved MLL, load imbalance, parallel
//     efficiency), online live-traffic injection, and a DML configuration
//     format.
//
// The quickest path from nothing to a running parallel simulation:
//
//	net, _ := massf.GenerateFlat(massf.FlatOptions{Routers: 500, Hosts: 100, Seed: 1})
//	routes := massf.NewRouting(net)
//	mapping, _ := massf.Map(net, massf.HPROF, massf.MappingConfig{Engines: 8}, prof)
//	sim, _ := massf.NewSimulation(massf.SimConfig{
//	    Net: net, Routes: routes, Part: mapping.Part, Engines: 8,
//	    Window: mapping.MLL, End: 10 * massf.Second,
//	})
//	massf.InstallHTTP(sim, massf.HTTPConfig{Clients: clients, Servers: servers})
//	result := sim.Run()
//
// See examples/ for complete programs and DESIGN.md for the system map.
package massf

import (
	"io"

	"massf/internal/agent"
	"massf/internal/cluster"
	"massf/internal/core"
	"massf/internal/des"
	"massf/internal/dml"
	"massf/internal/faults"
	"massf/internal/flight"
	"massf/internal/fluid"
	"massf/internal/mabrite"
	"massf/internal/memstat"
	"massf/internal/metrics"
	"massf/internal/model"
	"massf/internal/netmon"
	"massf/internal/netsim"
	"massf/internal/profile"
	"massf/internal/routing/bgp"
	"massf/internal/routing/interdomain"
	"massf/internal/routing/ospf"
	"massf/internal/runspec"
	"massf/internal/telemetry"
	"massf/internal/topology"
	"massf/internal/traffic"
)

// Core simulated-time type and units.
type Time = des.Time

// Time units.
const (
	Nanosecond  = des.Nanosecond
	Microsecond = des.Microsecond
	Millisecond = des.Millisecond
	Second      = des.Second
)

// Network model types.
type (
	// Network is the virtual network: nodes, links, and AS structure.
	Network = model.Network
	// Node is a router or host.
	Node = model.Node
	// NodeID indexes Network.Nodes.
	NodeID = model.NodeID
	// Link is a bidirectional latency/bandwidth link.
	Link = model.Link
	// LinkID indexes Network.Links.
	LinkID = model.LinkID
	// AS is one autonomous system with its relationships.
	AS = model.AS
)

// Node kinds.
const (
	Router = model.Router
	Host   = model.Host
)

// Topology generation.
type (
	// FlatOptions configures GenerateFlat (single-AS, Section 4 of the
	// paper).
	FlatOptions = topology.FlatOptions
	// MultiASOptions configures GenerateMultiAS (maBrite, Section 5).
	MultiASOptions = mabrite.Options
)

// GenerateFlat builds a single-AS power-law network on a geographic plane.
func GenerateFlat(opts FlatOptions) (*Network, error) { return topology.GenerateFlat(opts) }

// GenerateMultiAS builds an Internet-like multi-AS network with realistic
// BGP routing configuration.
func GenerateMultiAS(opts MultiASOptions) (*Network, error) { return mabrite.Generate(opts) }

// Routing.
type (
	// Routing resolves hop-by-hop forwarding over a network, combining
	// per-AS OSPF with converged BGP4 policy routes.
	Routing = interdomain.Router
	// OSPFDomain is a single shortest-path routing domain.
	OSPFDomain = ospf.Domain
	// BGPRib is the converged inter-domain routing state.
	BGPRib = bgp.RIB
)

// NewRouting converges BGP (for multi-AS networks) and prepares OSPF
// domains. The result implements the simulator's Routes interface.
func NewRouting(net *Network) *Routing { return interdomain.New(net) }

// NewOSPF builds a standalone OSPF domain over the member nodes (nil for
// the whole network).
func NewOSPF(net *Network, members []NodeID) *OSPFDomain { return ospf.NewDomain(net, members) }

// Load-balance mapping (the paper's contribution).
type (
	// Approach identifies a mapping strategy.
	Approach = core.Approach
	// MappingConfig tunes the mapper.
	MappingConfig = core.Config
	// Mapping is a computed node→engine assignment with its achieved MLL
	// and evaluation.
	Mapping = core.Mapping
	// Profile is measured traffic from a profiling run, consumed by the
	// PROF approaches.
	Profile = profile.Profile
)

// The mapping approaches evaluated in the paper.
const (
	RANDOM = core.RANDOM
	TOP    = core.TOP
	TOP2   = core.TOP2
	PLACE  = core.PLACE
	PROF   = core.PROF
	PROF2  = core.PROF2
	HTOP   = core.HTOP
	HPROF  = core.HPROF
)

// MaxMLL is the window used when a partition cuts nothing.
const MaxMLL = core.MaxMLL

// Map partitions the network for the given approach. prof may be nil for
// non-profile-based approaches.
func Map(net *Network, a Approach, cfg MappingConfig, prof *Profile) (*Mapping, error) {
	return core.Map(net, a, cfg, prof)
}

// ProfileFromResult captures a traffic profile from a completed run.
func ProfileFromResult(res *Result, horizon Time) *Profile {
	return profile.FromResult(res, horizon)
}

// ReadProfile / WriteProfile exchange profiles through files.
func ReadProfile(r io.Reader) (*Profile, error) { return profile.Read(r) }

// Simulation.
type (
	// RunSpec is the unified run configuration: the engine count, horizon,
	// seed, real-time pacing, event cost, series resolution and telemetry
	// knobs that previously appeared — with diverging defaults and
	// validation — on SimConfig, experiments.BuildSim and the daemon's
	// runctl.Spec. Normalize applies the shared defaults, Validate the
	// shared range checks, and SimConfig() seeds a packet-simulation
	// config; the daemon's Spec embeds it and the experiments harness
	// aliases it, so a RunSpec is validated exactly once on every path.
	RunSpec = runspec.RunSpec
	// SimConfig configures a packet-level simulation in full detail:
	// the shared RunSpec knobs plus everything a spec cannot know (the
	// network, routes, partition, barrier window, transport).
	SimConfig = netsim.Config
	// Simulation is a configured simulation; inject traffic, then Run.
	Simulation = netsim.Sim
	// Result is the outcome of a run.
	Result = netsim.Result
	// Routes is the forwarding interface consumed by the simulator.
	Routes = netsim.Routes
	// SyncCostModel models the cluster's barrier cost C(N).
	SyncCostModel = cluster.SyncCostModel
)

// NewSimulation builds a simulation from the configuration.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return netsim.New(cfg) }

// TeraGridSync returns the synchronization cost model fit to the paper's
// Figure 5 (the TeraGrid cluster).
func TeraGridSync() SyncCostModel { return cluster.DefaultTeraGrid() }

// MeasuredSync returns a model that measures real goroutine barrier costs
// on the host.
func MeasuredSync() SyncCostModel { return cluster.NewMeasured() }

// Traffic workloads.
type (
	// HTTPConfig describes the background web workload.
	HTTPConfig = traffic.HTTPConfig
	// HTTPStats counts background activity.
	HTTPStats = traffic.HTTPStats
	// Workflow is an application data-flow graph (GridNPB style).
	Workflow = traffic.Workflow
	// Task is one workflow node.
	Task = traffic.Task
	// WorkflowStats reports workflow rounds.
	WorkflowStats = traffic.WorkflowStats
	// ScaLapackConfig tunes the ScaLapack traffic model.
	ScaLapackConfig = traffic.ScaLapackConfig
)

// InstallHTTP wires background HTTP traffic into a simulation.
func InstallHTTP(s *Simulation, cfg HTTPConfig) *HTTPStats { return traffic.InstallHTTP(s, cfg) }

// InstallWorkflow wires an application workflow into a simulation; it
// re-runs until the horizon.
func InstallWorkflow(s *Simulation, w Workflow, start Time) (*WorkflowStats, error) {
	return traffic.InstallWorkflow(s, w, start)
}

// ScaLapackWorkflow models the ScaLapack application's traffic; hosts[0]
// is the root.
func ScaLapackWorkflow(hosts []NodeID, cfg ScaLapackConfig) Workflow {
	return traffic.ScaLapack(hosts, cfg)
}

// DefaultScaLapack returns the paper-like ScaLapack parameters.
func DefaultScaLapack() ScaLapackConfig { return traffic.DefaultScaLapack() }

// GridNPBWorkflows returns the paper's GridNPB combination: Helical Chain,
// Visualization Pipeline, and Mixed Bag.
func GridNPBWorkflows(hosts []NodeID) []Workflow { return traffic.GridNPB(hosts) }

// Hybrid flow/packet fidelity: bulk background traffic modeled
// analytically on a precomputed fluid plane while foreground traffic
// stays packet-level. Build the plane before NewSimulation and attach it
// via SimConfig.Fluid; RunSpec.FlowFidelity selects the fidelity on the
// unified run surface (experiments.BuildSim, massf -fidelity, massfd).
type (
	// FluidPlane is a precomputed, immutable flow-level traffic timeline:
	// max-min fair-share rates recomputed at every flow start/finish and
	// routing epoch, queryable as pure functions of simulated time.
	FluidPlane = fluid.Plane
	// FluidFlow is one analytic bulk transfer (Src, Dst, Bytes, Start).
	FluidFlow = fluid.Flow
	// FluidConfig configures a fluid plane build (network, routes,
	// horizon, optional fault plane and recomputation quantum).
	FluidConfig = fluid.Config
)

// Flow fidelities for RunSpec.FlowFidelity.
const (
	FidelityPacket = runspec.FidelityPacket
	FidelityHybrid = runspec.FidelityHybrid
)

// BuildFluidPlane solves the complete fluid timeline at setup time. The
// build is deterministic: the same inputs yield a byte-identical plane on
// every worker of a distributed run.
func BuildFluidPlane(cfg FluidConfig, flows []FluidFlow) (*FluidPlane, error) {
	return fluid.Build(cfg, flows)
}

// FluidHTTPWorkload compiles the HTTP background workload into fluid
// form: the initial request flows, the closed-loop chain callback for
// FluidConfig.Next, and the stats filled during the build. The RNG
// streams mirror InstallHTTP exactly, so the fluid workload is the
// analytic twin of the packet workload it replaces.
func FluidHTTPWorkload(cfg HTTPConfig, end Time) ([]FluidFlow, func(int32, Time) (FluidFlow, bool), *HTTPStats) {
	return traffic.FluidHTTP(cfg, end)
}

// Online simulation (live traffic).
type (
	// Agent bridges live goroutines and the simulated network (the
	// paper's Agent + WrapSocket).
	Agent = agent.Agent
	// Message is one live payload carried through the simulation.
	Message = agent.Message
)

// NewAgent installs a live-traffic agent on the simulation. Call before
// Run; combine with SimConfig.RealTimeFactor for wall-clock pacing.
func NewAgent(s *Simulation, pumpInterval Time) *Agent { return agent.New(s, pumpInterval) }

// Virtual compute resources (MicroGrid's CPU virtualization).
type (
	// HostCPUs maps hosts to processor-sharing virtual CPUs.
	HostCPUs = traffic.HostCPUs
)

// NewHostCPUs creates virtual CPUs for hosts (speed nil ⇒ 1.0 everywhere).
func NewHostCPUs(s *Simulation, hosts []NodeID, speed func(NodeID) float64) *HostCPUs {
	return traffic.NewHostCPUs(s, hosts, speed)
}

// MemSample is one process-memory reading: Go heap occupancy plus the
// OS-reported peak resident set.
type MemSample = memstat.Sample

// ReadMemStats samples this process's memory after a GC, so HeapInuse
// reflects live scenario state — the per-worker number the run reports
// surface.
func ReadMemStats() MemSample { return memstat.ReadStable() }

// InstallWorkflowCPU is InstallWorkflow with task compute running on the
// hosts' shared virtual CPUs (co-located tasks contend).
func InstallWorkflowCPU(s *Simulation, w Workflow, start Time, cpus *HostCPUs) (*WorkflowStats, error) {
	return traffic.InstallWorkflowCPU(s, w, start, cpus)
}

// BGP dynamics and validation studies (the paper's Section 7 future work).
type (
	// BGPSimulator is the incremental BGP state machine (announce,
	// withdraw, run to quiescence).
	BGPSimulator = bgp.Simulator
	// BeaconCycle is one announce/withdraw round of a beacon experiment.
	BeaconCycle = bgp.BeaconCycle
	// RIBComparison quantifies route-table similarity between two RIBs.
	RIBComparison = bgp.Comparison
)

// NewBGPSimulator builds an idle incremental BGP simulator over net's AS
// graph.
func NewBGPSimulator(net *Network) *BGPSimulator { return bgp.NewSimulator(net) }

// RunBeacon flaps an AS's prefix and reports per-cycle update counts and
// reachability — the BGP Beacons study.
func RunBeacon(net *Network, beaconAS int32, cycles int) []BeaconCycle {
	return bgp.RunBeacon(net, beaconAS, cycles)
}

// CompareRIBs measures the similarity of two RIBs (same paths, same next
// hops, path inflation of a over b).
func CompareRIBs(a, b *BGPRib) RIBComparison { return bgp.Compare(a, b) }

// ShortestPathRIB computes the policy-free shortest-AS-path baseline for
// path-inflation studies.
func ShortestPathRIB(net *Network) *BGPRib { return bgp.ShortestPathRIB(net) }

// Fault plane: scripted link/router churn with live reconvergence.
type (
	// FaultScript is a serializable fault timeline (explicit events or
	// seeded-random via GenerateFaults) plus the convergence-delay model.
	// Attach it to RunSpec.Faults or compile it with NewFaultPlane.
	FaultScript = faults.Script
	// FaultEvent is one scripted fault.
	FaultEvent = faults.Event
	// FaultGenOptions parameterizes the seeded-random script generator.
	FaultGenOptions = faults.GenOptions
	// FaultPlane is a compiled, immutable fault script: per-epoch routing
	// tables plus link/node availability as pure functions of simulated
	// time. Set SimConfig.Faults to inject it into a simulation.
	FaultPlane = faults.Plane
	// FaultInfo is the per-fault reconvergence report (update messages,
	// modeled convergence delay, when new routes took effect).
	FaultInfo = faults.FaultInfo
)

// Fault event kinds.
const (
	LinkFaultDown = faults.LinkDown
	LinkFaultUp   = faults.LinkUp
	NodeFaultDown = faults.NodeDown
	NodeFaultUp   = faults.NodeUp
	LinkFaultFlap = faults.LinkFlap
)

// NewFaultPlane compiles a fault script against a network and its
// converged routing: every routing epoch (post-fault OSPF/BGP state and
// when it takes effect) is precomputed here, so the simulation's hot path
// only does time-indexed lookups. Assign the result to SimConfig.Faults.
func NewFaultPlane(net *Network, routes *Routing, script *FaultScript) (*FaultPlane, error) {
	return faults.NewPlane(net, routes, script)
}

// LoadFaultScript reads and structurally validates a JSON fault script.
func LoadFaultScript(r io.Reader) (*FaultScript, error) { return faults.Load(r) }

// GenerateFaults produces a seeded-random fault script for net: transient
// link outages, flaps, router outages and permanent failures landing
// inside the given horizon.
func GenerateFaults(net *Network, opt FaultGenOptions) *FaultScript {
	return faults.Generate(net, opt)
}

// Live observability (the telemetry subsystem behind cmd/massfd).
type (
	// Telemetry bundles the live instruments of one run: atomic counters,
	// gauges and histograms plus the per-window trace ring. Set
	// SimConfig.Telemetry before NewSimulation; nil disables
	// instrumentation at zero cost.
	Telemetry = telemetry.SimTelemetry
	// TelemetryWindow is one barrier window's trace record.
	TelemetryWindow = telemetry.WindowRecord
	// MetricPoint is a point-in-time snapshot of one metric, renderable
	// as Prometheus text exposition or NDJSON.
	MetricPoint = telemetry.Point
)

// NewTelemetry creates the telemetry bundle for a run with the given
// engine count. Pass it via SimConfig.Telemetry; read live windows from
// Telemetry.Windows (Subscribe streams them as they execute) and snapshot
// metrics from Telemetry.Reg (WritePrometheus / WriteNDJSON). Use one
// Telemetry per run — the engine closes the window ring when the run ends.
func NewTelemetry(engines int) *Telemetry { return telemetry.New(engines, 4096) }

// Flight recorder: trace export and straggler analysis of a recording.
type (
	// TraceEvent is one Chrome trace-event (the format Perfetto loads).
	TraceEvent = telemetry.TraceEvent
	// FlightReport is the straggler/critical-path analysis of a recording.
	FlightReport = flight.Report
	// WindowAnalysis diagnoses one barrier window (bounding engine,
	// windowed parallel efficiency).
	WindowAnalysis = flight.WindowAnalysis
	// EngineBreakdown aggregates one engine's phase times over a recording.
	EngineBreakdown = flight.EngineBreakdown
	// RouterLoad names a simulated node's share of an engine's load.
	RouterLoad = flight.RouterLoad
)

// BuildTraceEvents converts a window recording (Telemetry.Windows
// snapshot) into Chrome trace events: one track per engine with
// compute/barrier/exchange slices per barrier window.
func BuildTraceEvents(recs []TelemetryWindow) []TraceEvent {
	return telemetry.BuildTraceEvents(recs)
}

// BuildTraceEventsWithSetup is BuildTraceEvents with a leading "setup"
// slice on each engine track — setupNS[e] is the scenario build wall time
// of the worker hosting engine e, so slow rebuilds show as the bar every
// other track waits on.
func BuildTraceEventsWithSetup(recs []TelemetryWindow, setupNS []int64) []TraceEvent {
	return telemetry.BuildTraceEventsWithSetup(recs, setupNS)
}

// WriteChromeTrace writes the recording as a Chrome trace-event JSON
// document, loadable in ui.perfetto.dev or chrome://tracing. meta is
// attached as otherData (may be nil).
func WriteChromeTrace(w io.Writer, recs []TelemetryWindow, meta map[string]string) error {
	return telemetry.WriteChromeTrace(w, recs, meta)
}

// AnalyzeFlight diagnoses a recording: per-window bounding engine and
// parallel efficiency, per-engine phase breakdown, and the top-K
// straggler ranking (topK ≤ 0 means 3). Call AttributeRouters on the
// result with the run's partition and measured per-node event counts to
// name the simulated routers dominating each straggler.
func AnalyzeFlight(recs []TelemetryWindow, topK int) *FlightReport {
	return flight.Analyze(recs, topK)
}

// Network observability (the netmon plane): per-link windowed telemetry,
// per-flow TCP records and sampled packet-path traces. Attach a plane via
// SimConfig.NetMon before NewSimulation; nil costs one check per record
// point. The same reports back massfd's GET /runs/{id}/net/* endpoints
// and massf -netstats / -pathtrace.
type (
	// NetMon is a run's network observability plane.
	NetMon = netmon.Mon
	// NetMonOptions sizes a plane: link count, horizon, sampling stride,
	// optional per-link bandwidths for utilization.
	NetMonOptions = netmon.Options
	// NetMonSummary condenses a plane's output (drop split, flow counts,
	// FCT percentiles).
	NetMonSummary = netmon.Summary
	// LinkReport ranks link directions by carried bits with windowed
	// utilization/queue/drop series.
	LinkReport = netmon.LinkReport
	// LinkDirStats is one link direction's telemetry.
	LinkDirStats = netmon.LinkDirStats
	// FlowReport lists per-flow TCP records plus the flow-completion-time
	// histogram.
	FlowReport = netmon.FlowReport
	// FlowSnapshot is one completed (or in-flight) flow's record.
	FlowSnapshot = netmon.FlowSnapshot
	// HopSpan is one sampled packet's stay at one hop.
	HopSpan = netmon.HopSpan
	// PacketPath is a sampled packet's hop spans stitched into a path.
	PacketPath = netmon.Path
)

// NewNetMon creates a network observability plane. Use one per run.
func NewNetMon(o NetMonOptions) *NetMon { return netmon.New(o) }

// PathTraceEvents renders sampled packet paths as extra Chrome-trace
// lanes (one per trace) aligned to the engine tracks of the same
// recording; pass nil recs to plot in raw simulated time. Combine with
// BuildTraceEvents and write via WriteChromeTraceEvents.
func PathTraceEvents(spans []HopSpan, recs []TelemetryWindow) []TraceEvent {
	return netmon.PathTraceEvents(spans, recs)
}

// WriteChromeTraceEvents writes pre-built trace events (engine tracks,
// path lanes, or both concatenated) as one Chrome trace-event document.
func WriteChromeTraceEvents(w io.Writer, events []TraceEvent, meta map[string]string) error {
	return telemetry.WriteChromeTraceEvents(w, events, meta)
}

// Metrics (Section 4.1 of the paper).
type (
	// Report bundles the evaluation metrics of one run.
	Report = metrics.Report
)

// LoadImbalance is the normalized standard deviation of per-engine event
// rates.
func LoadImbalance(engineEvents []uint64) float64 { return metrics.LoadImbalance(engineEvents) }

// ParallelEfficiency is PE(N, L) = Tseq / (N · T).
func ParallelEfficiency(totalEvents uint64, eventCost Time, engines int, parallelNS int64) float64 {
	return metrics.ParallelEfficiency(totalEvents, eventCost, engines, parallelNS)
}

// ReportFor assembles the paper's metrics from a run result.
func ReportFor(approach string, res *Result, eventCost Time) Report {
	return metrics.FromStats(approach, res.Stats, eventCost)
}

// DML configuration files.

// SaveNetwork writes the network as a DML configuration document.
func SaveNetwork(w io.Writer, net *Network) error { return dml.WriteNetwork(w, net) }

// LoadNetwork reads a DML configuration document.
func LoadNetwork(r io.Reader) (*Network, error) { return dml.ReadNetwork(r) }
