// Command simcheck runs the sequential-vs-parallel conformance oracle:
// seeded random scenarios executed on one engine and on k engines, with
// the full per-flow/per-router statistics diffed byte for byte and the
// pdes runtime invariant hooks armed. A failing seed is shrunk to a
// locally minimal reproducer, and the failing run's flight-recorder trace
// can be dumped as a Chrome trace-event file.
//
// Usage:
//
//	simcheck -scenarios 100                 # sweep seeds 1..100
//	simcheck -repro 42 -v                   # re-check one seed verbosely
//	simcheck -repro 42 -trace div.json      # dump the failing run's trace
//	simcheck -scenario-json '{"Seed":42,...}'  # re-check a shrunk reproducer
//	simcheck -scenarios 25 -churn -dist 2 -dist-k 4  # churn sweep + distributed leg
//	simcheck -scenarios 25 -dist 2 -dist-k 4 -shard  # + sharded-vs-replicated dimension
//	simcheck -scenarios 25 -netmon 4        # + observer-neutrality dimension (stride 4)
//	simcheck -scenarios 25 -fluid           # + hybrid flow/packet fidelity dimension
//	simcheck -scenarios 25 -fluid -churn    # hybrid × faults determinism sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"

	"massf/internal/dist"
	"massf/internal/simcheck"
)

func main() {
	ok, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("simcheck", flag.ContinueOnError)
	fs.SetOutput(out)
	scenarios := fs.Int("scenarios", 25, "number of seeded scenarios to sweep (seeds seed..seed+n-1)")
	seed := fs.Int64("seed", 1, "base seed for the sweep")
	ks := fs.String("ks", "2,4,8", "comma-separated parallel engine counts to compare against N=1")
	repro := fs.Int64("repro", 0, "check a single seed instead of sweeping")
	scJSON := fs.String("scenario-json", "", "check an explicit scenario (JSON, as printed by the shrinker)")
	shrink := fs.Bool("shrink", true, "shrink a failing seed to a minimal reproducer")
	shrinkBudget := fs.Int("shrink-budget", 40, "max oracle re-runs the shrinker may spend")
	trace := fs.String("trace", "", "on failure, write a Chrome trace of the first failing run to this file")
	churn := fs.Bool("churn", false, "inject seeded link/router fault churn into every swept scenario (the fault-plane conformance dimension)")
	netmonSample := fs.Int("netmon", 0, "also run each passing scenario with the netmon observability plane attached at this sampling stride and prove observer neutrality (largest k in -ks)")
	fluidDim := fs.Bool("fluid", false, "also run each passing scenario at hybrid flow/packet fidelity: scripted bulk TCP moves to the analytic fluid plane, the hybrid run must be byte-identical across every k in -ks and (churn-free scenarios) within the error budget of the pure-packet run")
	fluidMin := fs.Int64("fluid-min-bytes", simcheck.DefaultFluidMinBytes, "with -fluid: fluidization threshold — scripted TCP transfers at least this large go fluid")
	fluidQuantum := fs.Int64("fluid-quantum-ns", 0, "with -fluid: batch fluid rate recomputation onto this grid (0 = exact)")
	distWorkers := fs.Int("dist", 0, "also run each scenario across this many loopback TCP workers (largest k in -ks) and diff the merged observables")
	distK := fs.Int("dist-k", 0, "with -dist: pin the distributed engine count (default: largest k in -ks)")
	distListen := fs.String("dist-listen", "", "with -dist: listen on this address and wait for external workers (massfd -worker -join <addr>) instead of spawning in-process worker loops")
	shard := fs.Bool("shard", false, "with -dist: add the sharded-vs-replicated dimension — rerun each scenario with slice-materializing workers (slice-local build, scoped lazy routing, scenario artifact cache) and diff against both the replicated fleet and the sequential reference")
	scacheDir := fs.String("scache", "", "with -shard: scenario artifact cache directory (default: a fresh temp dir per process)")
	verbose := fs.Bool("v", false, "print every scenario, not just failures")
	if err := fs.Parse(args); err != nil {
		return false, err
	}

	kList, err := parseKs(*ks)
	if err != nil {
		return false, err
	}
	cacheDir := *scacheDir
	if *shard {
		if *distWorkers <= 0 {
			return false, fmt.Errorf("-shard requires -dist (sliced workers are a distributed dimension)")
		}
		if *distListen != "" {
			return false, fmt.Errorf("-shard cannot join external workers (-dist-listen): the sharded check runs two fleets back to back")
		}
		if cacheDir == "" {
			dir, err := os.MkdirTemp("", "massf-scache-*")
			if err != nil {
				return false, err
			}
			defer os.RemoveAll(dir)
			cacheDir = dir
		}
	}

	var list []simcheck.Scenario
	switch {
	case *scJSON != "":
		var sc simcheck.Scenario
		if err := json.Unmarshal([]byte(*scJSON), &sc); err != nil {
			return false, fmt.Errorf("parsing -scenario-json: %w", err)
		}
		list = []simcheck.Scenario{sc}
	case *repro != 0:
		sc := simcheck.NewScenario(*repro)
		sc.Ks = kList
		if *churn {
			sc = simcheck.Churn(sc)
		}
		list = []simcheck.Scenario{sc}
	default:
		for i := 0; i < *scenarios; i++ {
			sc := simcheck.NewScenario(*seed + int64(i))
			sc.Ks = kList
			if *churn {
				sc = simcheck.Churn(sc)
			}
			list = append(list, sc)
		}
	}

	pass := 0
	for _, sc := range list {
		rep, err := simcheck.Check(sc)
		if err != nil {
			return false, fmt.Errorf("seed %d: %w", sc.Seed, err)
		}
		if !rep.Failed() {
			if *distWorkers > 0 {
				ok, err := checkDistributed(out, sc, *distWorkers, *distK, *distListen, *verbose)
				if err != nil {
					return false, fmt.Errorf("seed %d distributed: %w", sc.Seed, err)
				}
				if !ok {
					fmt.Fprintf(out, "%d/%d scenarios passed before first failure\n", pass, len(list))
					return false, nil
				}
				if *shard {
					ok, err := checkSharded(out, sc, *distWorkers, *distK, cacheDir, *verbose)
					if err != nil {
						return false, fmt.Errorf("seed %d sharded: %w", sc.Seed, err)
					}
					if !ok {
						fmt.Fprintf(out, "%d/%d scenarios passed before first failure\n", pass, len(list))
						return false, nil
					}
				}
			}
			if *netmonSample > 0 {
				ok, err := checkNeutrality(out, sc, kList, *netmonSample, *verbose)
				if err != nil {
					return false, fmt.Errorf("seed %d neutrality: %w", sc.Seed, err)
				}
				if !ok {
					fmt.Fprintf(out, "%d/%d scenarios passed before first failure\n", pass, len(list))
					return false, nil
				}
			}
			if *fluidDim {
				ok, err := checkFluid(out, sc, *fluidMin, *fluidQuantum, *verbose)
				if err != nil {
					return false, fmt.Errorf("seed %d fluid: %w", sc.Seed, err)
				}
				if !ok {
					fmt.Fprintf(out, "%d/%d scenarios passed before first failure\n", pass, len(list))
					return false, nil
				}
			}
			pass++
			if *verbose {
				fmt.Fprintf(out, "ok   %s (events=%d)\n", sc, rep.Ref.TotalEvents)
			}
			continue
		}
		reportFailure(out, rep)
		if *shrink {
			min := simcheck.Shrink(sc, func(c simcheck.Scenario) bool {
				r, err := simcheck.Check(c)
				return err == nil && r.Failed()
			}, *shrinkBudget)
			// Freeze seeded churn into its explicit fault timeline so the
			// reproducer JSON survives generator changes.
			if mat, err := min.Materialized(); err == nil {
				min = mat
			}
			b, _ := json.Marshal(min)
			fmt.Fprintf(out, "shrunk reproducer: %s\n", min)
			fmt.Fprintf(out, "re-check with: simcheck -scenario-json '%s'\n", b)
		}
		if *trace != "" {
			k := firstFailingK(rep)
			f, err := os.Create(*trace)
			if err != nil {
				return false, err
			}
			terr := simcheck.TraceRun(sc, k, f)
			cerr := f.Close()
			if terr != nil {
				return false, fmt.Errorf("writing trace: %w", terr)
			}
			if cerr != nil {
				return false, cerr
			}
			fmt.Fprintf(out, "flight-recorder trace of k=%d run written to %s\n", k, *trace)
		}
		fmt.Fprintf(out, "%d/%d scenarios passed before first failure\n", pass, len(list))
		return false, nil
	}
	fmt.Fprintf(out, "simcheck: %d/%d scenarios passed\n", pass, len(list))
	return true, nil
}

// checkDistributed reruns a passing scenario with one engine count (pinned
// by -dist-k, else the largest in Ks) split across `workers` TCP workers
// and diffs the merged observables against the sequential reference. With
// listen == "" the workers are in-process loopback loops; otherwise the
// oracle listens there and waits for external worker processes
// (massfd -worker) to join.
func checkDistributed(out io.Writer, sc simcheck.Scenario, workers, pinnedK int, listen string, verbose bool) (bool, error) {
	k := pinnedK
	if k == 0 {
		for _, c := range sc.Ks {
			if c >= workers && c > k {
				k = c
			}
		}
	}
	if k == 0 || k < workers {
		return true, nil // no engine count can host that many workers
	}
	var rep *simcheck.DistReport
	var err error
	if listen != "" {
		ln, lerr := net.Listen("tcp", listen)
		if lerr != nil {
			return false, lerr
		}
		fmt.Fprintf(out, "waiting for %d workers on %s (massfd -worker -join %s)\n",
			workers, ln.Addr(), ln.Addr())
		rep, err = simcheck.ServeDistributed(ln, sc, k, workers, dist.Options{})
		ln.Close()
	} else {
		rep, err = simcheck.CheckDistributed(sc, k, workers, dist.Options{})
	}
	if err != nil {
		return false, err
	}
	if !rep.Failed() {
		if verbose {
			fmt.Fprintf(out, "ok   %s distributed k=%d workers=%d (%d windows)\n",
				sc, k, workers, rep.Windows)
		}
		return true, nil
	}
	fmt.Fprintf(out, "FAIL %s distributed k=%d workers=%d window=%v (%d windows)\n",
		sc, k, workers, rep.Window, rep.Windows)
	for _, d := range rep.DivsInProc {
		fmt.Fprintf(out, "  in-process divergence: %v\n", d)
	}
	for _, d := range rep.DivsDist {
		fmt.Fprintf(out, "  distributed divergence: %v\n", d)
	}
	return false, nil
}

// checkSharded reruns a passing scenario twice across `workers` loopback
// workers — once replicated (every worker builds the full scenario), once
// sliced (every worker materializes only its engine range, with scoped lazy
// routing, through the scenario artifact cache) — and diffs both merged
// observable sets against the sequential reference.
func checkSharded(out io.Writer, sc simcheck.Scenario, workers, pinnedK int, cacheDir string, verbose bool) (bool, error) {
	k := pinnedK
	if k == 0 {
		for _, c := range sc.Ks {
			if c >= workers && c > k {
				k = c
			}
		}
	}
	if k == 0 || k < workers {
		return true, nil
	}
	rep, err := simcheck.CheckSharded(sc, k, workers, dist.Options{}, cacheDir)
	if err != nil {
		return false, err
	}
	if !rep.Failed() {
		if verbose {
			fmt.Fprintf(out, "ok   %s sharded k=%d workers=%d (%d windows)\n",
				sc, k, workers, rep.Windows)
			for _, wm := range rep.SlicedMem {
				fmt.Fprintf(out, "       %s: %d owned nodes, build %.1fms, route tables %dB\n",
					wm.Name, wm.SliceNodes, float64(wm.BuildNS)/1e6, wm.RouteBytes)
			}
		}
		return true, nil
	}
	fmt.Fprintf(out, "FAIL %s sharded k=%d workers=%d window=%v (%d windows)\n",
		sc, k, workers, rep.Window, rep.Windows)
	for _, d := range rep.DivsDist {
		fmt.Fprintf(out, "  replicated divergence: %v\n", d)
	}
	for _, d := range rep.DivsSliced {
		fmt.Fprintf(out, "  sliced divergence: %v\n", d)
	}
	return false, nil
}

// checkFluid reruns a passing scenario at hybrid flow/packet fidelity:
// scripted TCP transfers of at least minBytes move to the analytic fluid
// plane, the hybrid run must stay byte-identical across every engine
// count in Ks, and — on churn-free scenarios — per-flow goodput, FCT
// percentiles, and per-link carried volume must stay within the error
// budget of the pure-packet run of the same seed.
func checkFluid(out io.Writer, sc simcheck.Scenario, minBytes, quantumNS int64, verbose bool) (bool, error) {
	sc.FluidMinBytes = minBytes
	sc.FluidQuantumNS = quantumNS
	rep, err := simcheck.CheckFluid(sc, simcheck.DefaultFluidBudget())
	if err != nil {
		return false, err
	}
	if !rep.Failed() {
		if verbose {
			switch {
			case rep.FluidFlows == 0:
				fmt.Fprintf(out, "ok   %s fluid: no transfer over threshold\n", rep.Scenario)
			case rep.Metrics == nil:
				fmt.Fprintf(out, "ok   %s fluid flows=%d completed=%d (churn: determinism only)\n",
					rep.Scenario, rep.FluidFlows, rep.HybridRef.FluidCompleted)
			default:
				fmt.Fprintf(out, "ok   %s fluid flows=%d completed=%d\n",
					rep.Scenario, rep.FluidFlows, rep.HybridRef.FluidCompleted)
				for _, m := range rep.Metrics {
					fmt.Fprintf(out, "       %v\n", m)
				}
			}
		}
		return true, nil
	}
	fmt.Fprintf(out, "FAIL %s fluid flows=%d\n", rep.Scenario, rep.FluidFlows)
	for i := range rep.Runs {
		kr := &rep.Runs[i]
		for _, v := range kr.Violations {
			fmt.Fprintf(out, "  k=%d violation: %v\n", kr.K, v)
		}
		const maxShown = 8
		for j, d := range kr.Divergences {
			if j == maxShown {
				fmt.Fprintf(out, "  k=%d ... and %d more divergences\n", kr.K, len(kr.Divergences)-maxShown)
				break
			}
			fmt.Fprintf(out, "  k=%d hybrid divergence: %v\n", kr.K, d)
		}
	}
	for _, m := range rep.Metrics {
		if !m.OK {
			fmt.Fprintf(out, "  over budget: %v\n", m)
		}
	}
	return false, nil
}

// checkNeutrality reruns a passing scenario with the netmon observability
// plane attached (sampling every `sample` packets) at the largest engine
// count and verifies the observer changed nothing.
func checkNeutrality(out io.Writer, sc simcheck.Scenario, ks []int, sample int, verbose bool) (bool, error) {
	k := ks[0]
	for _, c := range ks {
		if c > k {
			k = c
		}
	}
	rep, err := simcheck.CheckNeutrality(sc, k, sample)
	if err != nil {
		return false, err
	}
	if !rep.Failed() {
		if verbose {
			fmt.Fprintf(out, "ok   %s %s\n", sc, rep)
		}
		return true, nil
	}
	fmt.Fprintf(out, "FAIL %s %s\n", sc, rep)
	for _, d := range rep.DivsSeq {
		fmt.Fprintf(out, "  sequential perturbation: %v\n", d)
	}
	for _, d := range rep.DivsPar {
		fmt.Fprintf(out, "  parallel perturbation: %v\n", d)
	}
	return false, nil
}

func reportFailure(out io.Writer, rep *simcheck.Report) {
	fmt.Fprintf(out, "FAIL %s\n", rep.Scenario)
	for i := range rep.Runs {
		kr := &rep.Runs[i]
		if !kr.Failed() {
			continue
		}
		fmt.Fprintf(out, "  k=%d window=%v (%d windows executed, MLL %v):\n",
			kr.K, kr.Window, kr.Windows, kr.MLL)
		for _, v := range kr.Violations {
			fmt.Fprintf(out, "    violation: %v\n", v)
		}
		const maxShown = 8
		for i, d := range kr.Divergences {
			if i == maxShown {
				fmt.Fprintf(out, "    ... and %d more divergences\n", len(kr.Divergences)-maxShown)
				break
			}
			fmt.Fprintf(out, "    divergence: %v\n", d)
		}
		if w := kr.DivergentWindow(); w >= 0 {
			fmt.Fprintf(out, "    earliest divergence in barrier window %d of %d\n", w, kr.Windows)
		}
	}
}

func firstFailingK(rep *simcheck.Report) int {
	for i := range rep.Runs {
		if rep.Runs[i].Failed() {
			return rep.Runs[i].K
		}
	}
	return rep.Runs[0].K
}

func parseKs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k < 2 {
			return nil, fmt.Errorf("invalid -ks entry %q (want integers ≥ 2)", part)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-ks is empty")
	}
	return out, nil
}
