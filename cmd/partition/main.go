// Command partition maps a DML network onto simulation engine nodes using
// one of the paper's load-balance approaches and reports the partition's
// quality: achieved MLL, edge cut, estimated load balance, and the E =
// Es·Ec evaluation. The node→engine assignment can be written out for
// cmd/massf.
//
// Example:
//
//	partition -net net.dml -approach HPROF -engines 90 -profile prof.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"massf"
)

var approaches = map[string]massf.Approach{
	"RANDOM": massf.RANDOM,
	"TOP":    massf.TOP,
	"TOP2":   massf.TOP2,
	"PLACE":  massf.PLACE,
	"PROF":   massf.PROF,
	"PROF2":  massf.PROF2,
	"HTOP":   massf.HTOP,
	"HPROF":  massf.HPROF,
}

func main() {
	var (
		netPath  = flag.String("net", "", "input DML network (required)")
		name     = flag.String("approach", "HPROF", "mapping approach: RANDOM, TOP, TOP2, PROF, PROF2, HTOP, HPROF")
		engines  = flag.Int("engines", 16, "simulation engine node count N")
		profPath = flag.String("profile", "", "traffic profile file (required for PROF/PROF2/HPROF)")
		seed     = flag.Int64("seed", 1, "partitioner seed")
		out      = flag.String("o", "", "write the node→engine assignment to this file")
	)
	flag.Parse()
	if *netPath == "" {
		fatal(fmt.Errorf("-net is required"))
	}
	a, ok := approaches[strings.ToUpper(*name)]
	if !ok {
		fatal(fmt.Errorf("unknown approach %q", *name))
	}
	f, err := os.Open(*netPath)
	if err != nil {
		fatal(err)
	}
	net, err := massf.LoadNetwork(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	var prof *massf.Profile
	if *profPath != "" {
		pf, err := os.Open(*profPath)
		if err != nil {
			fatal(err)
		}
		prof, err = massf.ReadProfile(pf)
		pf.Close()
		if err != nil {
			fatal(err)
		}
	}
	m, err := massf.Map(net, a, massf.MappingConfig{Engines: *engines, Seed: *seed}, prof)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("approach        %v\n", m.Approach)
	fmt.Printf("engines         %d\n", *engines)
	fmt.Printf("achieved MLL    %v\n", m.MLL)
	fmt.Printf("edge cut        %d\n", m.EdgeCut)
	if m.Approach == massf.HTOP || m.Approach == massf.HPROF {
		fmt.Printf("chosen Tmll     %v (of %d candidates)\n", m.Tmll, m.Candidates)
	}
	fmt.Printf("E = Es·Ec       %.3f = %.3f · %.3f\n", m.E, m.Es, m.Ec)
	var min, max massf.NodeID
	var lo, hi int64 = -1, -1
	for p, w := range m.EstLoad {
		if lo < 0 || w < lo {
			lo, min = w, massf.NodeID(p)
		}
		if w > hi {
			hi, max = w, massf.NodeID(p)
		}
	}
	fmt.Printf("est load        min %d (engine %d), max %d (engine %d)\n", lo, min, hi, max)

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		bw := bufio.NewWriter(of)
		for node, part := range m.Part {
			fmt.Fprintf(bw, "%d %d\n", node, part)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partition:", err)
	os.Exit(1)
}
