// Command mabrite generates network topologies as DML configuration files:
// single-AS power-law networks (-flat) or Internet-like multi-AS networks
// with automatically configured BGP routing policies.
//
// Examples:
//
//	mabrite -as 100 -routers-per-as 200 -hosts 10000 -o net.dml
//	mabrite -flat -routers 20000 -hosts 10000 -o flat.dml
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"massf"
)

func main() {
	var (
		flat         = flag.Bool("flat", false, "generate a single-AS (flat OSPF) network")
		routers      = flag.Int("routers", 2000, "router count (flat mode)")
		ases         = flag.Int("as", 20, "AS count (multi-AS mode)")
		routersPerAS = flag.Int("routers-per-as", 100, "routers per AS (multi-AS mode)")
		hosts        = flag.Int("hosts", 1000, "host count")
		seed         = flag.Int64("seed", 0, "generator seed (0 = derive from the clock)")
		out          = flag.String("o", "", "output DML file (default stdout)")
		stats        = flag.Bool("stats", false, "print topology statistics to stderr")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	// The effective seed makes any generated topology reproducible:
	// re-run with -seed <value>.
	fmt.Fprintf(os.Stderr, "mabrite: seed %d\n", *seed)

	var net *massf.Network
	var err error
	if *flat {
		net, err = massf.GenerateFlat(massf.FlatOptions{Routers: *routers, Hosts: *hosts, Seed: *seed})
	} else {
		net, err = massf.GenerateMultiAS(massf.MultiASOptions{
			ASes: *ases, RoutersPerAS: *routersPerAS, Hosts: *hosts, Seed: *seed,
		})
	}
	if err != nil {
		fatal(err)
	}
	if err := net.Validate(); err != nil {
		fatal(fmt.Errorf("generated network failed validation: %w", err))
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "nodes=%d routers=%d hosts=%d links=%d ases=%d\n",
			len(net.Nodes), net.NumRouters(), net.NumHosts(), len(net.Links), len(net.ASes))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := massf.SaveNetwork(w, net); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mabrite:", err)
	os.Exit(1)
}
