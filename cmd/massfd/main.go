// Command massfd is the run-control daemon: an HTTP service that
// accepts scenario submissions (inline DML networks or generator
// parameters), executes them as concurrent parallel simulations under a
// bounded worker pool, and exposes live observability — per-window
// NDJSON streams per run and an aggregate Prometheus endpoint.
//
// Example session:
//
//	massfd -addr 127.0.0.1:8672 &
//	curl -s localhost:8672/runs -d '{"flat":{"routers":200,"hosts":100},"engines":4,"seconds":2}'
//	curl -s localhost:8672/runs -d '{"flat":{"routers":200,"hosts":100},"engines":4,"seconds":2,
//	                                 "flow_fidelity":"hybrid"}'   # background HTTP on the fluid plane
//	curl -s localhost:8672/runs/r0001/metrics          # live NDJSON
//	curl -s localhost:8672/metrics                     # Prometheus
//
// With -worker the binary is instead one worker of a DISTRIBUTED
// simulation: it dials the coordinator, receives its job (kind + hosted
// engine range + spec), runs it through the dist TCP transport, ships the
// result payload, and exits. One process per worker:
//
//	massfd -worker -join 10.0.0.1:9432 -worker-name node7
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"massf/internal/agent"
	"massf/internal/dist"
	"massf/internal/faults"
	"massf/internal/runctl"
	"massf/internal/simcheck"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8672", "listen address (use :0 for an ephemeral port)")
		workers   = flag.Int("workers", maxInt(1, runtime.NumCPU()/2), "maximum concurrent simulations")
		ringCap   = flag.Int("ring", 4096, "per-run window-record ring capacity")
		withPprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ and expvar under /debug/vars")
		faultPath = flag.String("faults", "", "JSON fault script applied to every submitted run that carries none of its own")
		ingest    = flag.String("ingest", "", "TCP listen address of the live agent ingest plane (empty = disabled; use :0 for an ephemeral port)")
		window    = flag.Int("ingest-window", 0, "per-connection send window granted to ingest clients (0 = default)")
		queueCap  = flag.Int("queue", 64, "admission-queue depth; submissions beyond it are rejected with 429")
		cacheDir  = flag.String("scache", "", "on-disk topology artifact cache directory (\"auto\" = per-user default, empty = in-memory only)")

		worker     = flag.Bool("worker", false, "run as a distributed-simulation worker instead of the HTTP daemon")
		join       = flag.String("join", "", "coordinator address to dial (worker mode)")
		workerName = flag.String("worker-name", "", "name reported to the coordinator (worker mode; default host:pid)")
		hbEvery    = flag.Duration("heartbeat", 0, "heartbeat interval while computing (worker mode; 0 = default)")
	)
	flag.Parse()

	if *worker {
		if *join == "" {
			fmt.Fprintln(os.Stderr, "massfd: -worker requires -join <coordinator address>")
			os.Exit(2)
		}
		name := *workerName
		if name == "" {
			host, _ := os.Hostname()
			name = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		log.Printf("massfd: worker %q joining coordinator at %s", name, *join)
		err := dist.RunWorker(*join, name, workerRunners(), dist.Options{HeartbeatInterval: *hbEvery})
		if err != nil {
			fmt.Fprintln(os.Stderr, "massfd:", err)
			os.Exit(1)
		}
		log.Printf("massfd: worker %q done", name)
		return
	}

	var ing *agent.Ingest
	if *ingest != "" {
		ing = agent.NewIngest(*window)
	}
	mgr := runctl.NewManagerOpts(runctl.Options{
		Workers:    *workers,
		RingCap:    *ringCap,
		QueueDepth: *queueCap,
		CacheDir:   *cacheDir,
		Ingest:     ing,
	})
	if ing != nil {
		iln, err := net.Listen("tcp", *ingest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "massfd:", err)
			os.Exit(1)
		}
		// One parseable line, mirroring the HTTP one below.
		log.Printf("massfd: agent ingest on tcp://%s", iln.Addr())
		go func() {
			if err := ing.Serve(iln); err != nil {
				log.Printf("massfd: ingest listener failed: %v", err)
			}
		}()
		defer ing.Close()
	}
	if *faultPath != "" {
		ff, err := os.Open(*faultPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "massfd:", err)
			os.Exit(1)
		}
		script, err := faults.Load(ff)
		ff.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "massfd:", err)
			os.Exit(1)
		}
		mgr.SetDefaultFaults(script)
		log.Printf("massfd: default fault script %s (%d events)", *faultPath, len(script.Events))
	}
	var handler http.Handler = runctl.NewServer(mgr)
	if *withPprof {
		// Host-side profiling of the daemon itself (goroutine/heap/CPU),
		// complementing the simulation-side flight recorder. Registered
		// explicitly so the default off state exposes nothing.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Handler: handler}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "massfd:", err)
		os.Exit(1)
	}
	// The resolved address on one parseable line, so scripts (and the
	// e2e test) can use -addr 127.0.0.1:0.
	log.Printf("massfd: listening on http://%s (workers=%d)", ln.Addr(), *workers)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("massfd: %v, shutting down (repeat to force exit)", s)
		// A second signal aborts the graceful drain immediately.
		go func() {
			s := <-sig
			log.Printf("massfd: %v again, exiting now", s)
			os.Exit(1)
		}()
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "massfd:", err)
			os.Exit(1)
		}
		return
	}

	ctx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	srv.Shutdown(ctx)
	cancelHTTP()
	ctx, cancelRuns := context.WithTimeout(context.Background(), 30*time.Second)
	if err := mgr.Shutdown(ctx); err != nil {
		log.Printf("massfd: runs did not drain: %v", err)
	}
	cancelRuns()
}

// workerRunners registers every job kind this worker build can execute.
// The transport layer is model-agnostic; the cmd layer owns this registry.
func workerRunners() map[string]dist.Runner {
	return simcheck.Runners()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
