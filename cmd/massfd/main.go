// Command massfd is the run-control daemon: an HTTP service that
// accepts scenario submissions (inline DML networks or generator
// parameters), executes them as concurrent parallel simulations under a
// bounded worker pool, and exposes live observability — per-window
// NDJSON streams per run and an aggregate Prometheus endpoint.
//
// Example session:
//
//	massfd -addr 127.0.0.1:8672 &
//	curl -s localhost:8672/runs -d '{"flat":{"routers":200,"hosts":100},"engines":4,"seconds":2}'
//	curl -s localhost:8672/runs/r0001/metrics          # live NDJSON
//	curl -s localhost:8672/metrics                     # Prometheus
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"massf/internal/runctl"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8672", "listen address (use :0 for an ephemeral port)")
		workers   = flag.Int("workers", maxInt(1, runtime.NumCPU()/2), "maximum concurrent simulations")
		ringCap   = flag.Int("ring", 4096, "per-run window-record ring capacity")
		withPprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ and expvar under /debug/vars")
	)
	flag.Parse()

	mgr := runctl.NewManager(*workers, *ringCap)
	var handler http.Handler = runctl.NewServer(mgr)
	if *withPprof {
		// Host-side profiling of the daemon itself (goroutine/heap/CPU),
		// complementing the simulation-side flight recorder. Registered
		// explicitly so the default off state exposes nothing.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Handler: handler}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "massfd:", err)
		os.Exit(1)
	}
	// The resolved address on one parseable line, so scripts (and the
	// e2e test) can use -addr 127.0.0.1:0.
	log.Printf("massfd: listening on http://%s (workers=%d)", ln.Addr(), *workers)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("massfd: %v, shutting down (repeat to force exit)", s)
		// A second signal aborts the graceful drain immediately.
		go func() {
			s := <-sig
			log.Printf("massfd: %v again, exiting now", s)
			os.Exit(1)
		}()
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "massfd:", err)
			os.Exit(1)
		}
		return
	}

	ctx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	srv.Shutdown(ctx)
	cancelHTTP()
	ctx, cancelRuns := context.WithTimeout(context.Background(), 30*time.Second)
	if err := mgr.Shutdown(ctx); err != nil {
		log.Printf("massfd: runs did not drain: %v", err)
	}
	cancelRuns()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
