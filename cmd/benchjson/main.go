// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a labeled entry in a JSON trajectory file (BENCH_pipeline.json),
// so performance numbers are recorded next to the code they measure and
// regressions show up in review instead of anecdote.
//
// Each invocation appends (or replaces, when the label already exists) one
// run entry:
//
//	go test -run '^$' -bench 'Kernel' -benchmem ./... | benchjson -label after -out BENCH_pipeline.json
//
// The file keeps every labeled run, so a PR can commit the before/after
// pair produced during a performance refactor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	HasMem      bool    `json:"has_mem"`
}

// Run is one labeled benchmark capture.
type Run struct {
	Label   string            `json:"label"`
	Results map[string]Result `json:"results"`
}

// File is the whole trajectory.
type File struct {
	Runs []Run `json:"runs"`
}

// benchLine matches e.g.
//
//	BenchmarkKernelSteadyState-16  381712  3110 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "run", "label for this capture (e.g. before, after)")
	out := flag.String("out", "BENCH_pipeline.json", "trajectory file to update")
	gateAgainst := flag.String("gate-against", "", "gate: compare this capture against the recorded run with this label and exit 1 on regression")
	gateMax := flag.Float64("gate-max-regress", 3, "gate: max allowed ns/op regression in percent for -gate-bench benchmarks")
	gateBench := flag.String("gate-bench", "", "gate: anchored regexp of benchmarks whose ns/op is gated against the baseline")
	gateZero := flag.String("gate-zero-allocs", "", "gate: anchored regexp of benchmarks that must report 0 allocs/op in this capture")
	flag.Parse()

	results := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the -GOMAXPROCS suffix so entries compare across machines.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			r.HasMem = true
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	var f File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("parsing existing %s: %w", *out, err))
		}
	}
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == *label {
			f.Runs[i].Results = results
			replaced = true
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, Run{Label: *label, Results: results})
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results under label %q to %s\n", len(results), *label, *out)

	if err := gate(&f, results, *gateAgainst, *gateMax, *gateBench, *gateZero); err != nil {
		fatal(err)
	}
}

// gate enforces the perf contract on the capture just recorded: every
// benchmark matching zeroRe must allocate nothing, and every benchmark
// matching benchRe must stay within maxPct percent of its ns/op in the run
// labeled against. A gated benchmark missing from the baseline is an
// error — a silently skipped gate reads as a pass.
func gate(f *File, results map[string]Result, against string, maxPct float64, benchRe, zeroRe string) error {
	if against == "" && zeroRe == "" {
		return nil
	}
	var violations []string
	if zeroRe != "" {
		re, err := regexp.Compile(zeroRe)
		if err != nil {
			return fmt.Errorf("-gate-zero-allocs: %w", err)
		}
		matched := false
		for name, r := range results {
			if !re.MatchString(name) {
				continue
			}
			matched = true
			if !r.HasMem {
				violations = append(violations, fmt.Sprintf("%s: no -benchmem data to prove 0 allocs/op", name))
			} else if r.AllocsPerOp != 0 {
				violations = append(violations, fmt.Sprintf("%s: %d allocs/op, want 0", name, r.AllocsPerOp))
			}
		}
		if !matched {
			return fmt.Errorf("gate: no benchmark matches -gate-zero-allocs %q", zeroRe)
		}
	}
	if against != "" {
		var base map[string]Result
		for i := range f.Runs {
			if f.Runs[i].Label == against {
				base = f.Runs[i].Results
			}
		}
		if base == nil {
			return fmt.Errorf("gate: no recorded run labeled %q to gate against", against)
		}
		re, err := regexp.Compile(benchRe)
		if err != nil {
			return fmt.Errorf("-gate-bench: %w", err)
		}
		matched := false
		for name, r := range results {
			if benchRe == "" || !re.MatchString(name) {
				continue
			}
			matched = true
			b, ok := base[name]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s: not in baseline %q", name, against))
				continue
			}
			pct := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			verdict := "ok"
			if pct > maxPct {
				verdict = "REGRESSED"
				violations = append(violations, fmt.Sprintf("%s: %.0f ns/op vs %.0f in %q (%+.1f%%, limit %+.1f%%)",
					name, r.NsPerOp, b.NsPerOp, against, pct, maxPct))
			}
			fmt.Fprintf(os.Stderr, "benchjson: gate %s: %+.1f%% vs %q (%s)\n", name, pct, against, verdict)
		}
		if benchRe != "" && !matched {
			return fmt.Errorf("gate: no benchmark matches -gate-bench %q", benchRe)
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
