// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a labeled entry in a JSON trajectory file (BENCH_pipeline.json),
// so performance numbers are recorded next to the code they measure and
// regressions show up in review instead of anecdote.
//
// Each invocation appends (or replaces, when the label already exists) one
// run entry:
//
//	go test -run '^$' -bench 'Kernel' -benchmem ./... | benchjson -label after -out BENCH_pipeline.json
//
// The file keeps every labeled run, so a PR can commit the before/after
// pair produced during a performance refactor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	HasMem      bool    `json:"has_mem"`
}

// Run is one labeled benchmark capture.
type Run struct {
	Label   string            `json:"label"`
	Results map[string]Result `json:"results"`
}

// File is the whole trajectory.
type File struct {
	Runs []Run `json:"runs"`
}

// benchLine matches e.g.
//
//	BenchmarkKernelSteadyState-16  381712  3110 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "run", "label for this capture (e.g. before, after)")
	out := flag.String("out", "BENCH_pipeline.json", "trajectory file to update")
	flag.Parse()

	results := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the -GOMAXPROCS suffix so entries compare across machines.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			r.HasMem = true
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	var f File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("parsing existing %s: %w", *out, err))
		}
	}
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == *label {
			f.Runs[i].Results = results
			replaced = true
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, Run{Label: *label, Results: results})
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results under label %q to %s\n", len(results), *label, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
