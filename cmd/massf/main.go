// Command massf runs a parallel packet-level network simulation from a DML
// network file: it maps the network onto engine nodes with a chosen
// load-balance approach, drives the paper's background and foreground
// workloads, and reports the evaluation metrics (simulation time, achieved
// MLL, load imbalance, parallel efficiency). A profiling pass can be
// captured with -profile-out and fed back via -profile for the
// profile-based approaches.
//
// Example two-pass PROF workflow:
//
//	massf -net net.dml -approach RANDOM -engines 1 -profile-out prof.txt
//	massf -net net.dml -approach HPROF -engines 90 -profile prof.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"massf"
)

var approaches = map[string]massf.Approach{
	"RANDOM": massf.RANDOM,
	"TOP":    massf.TOP,
	"TOP2":   massf.TOP2,
	"PLACE":  massf.PLACE,
	"PROF":   massf.PROF,
	"PROF2":  massf.PROF2,
	"HTOP":   massf.HTOP,
	"HPROF":  massf.HPROF,
}

func main() {
	var (
		netPath   = flag.String("net", "", "input DML network (required)")
		name      = flag.String("approach", "HPROF", "mapping approach")
		engines   = flag.Int("engines", 16, "simulation engine node count")
		horizon   = flag.Float64("seconds", 8, "simulated seconds")
		app       = flag.String("app", "scalapack", "foreground application: scalapack, gridnpb, none")
		clients   = flag.Int("clients", 0, "background HTTP clients (default: 80% of free hosts)")
		servers   = flag.Int("servers", 0, "background HTTP servers (default: the rest)")
		profPath  = flag.String("profile", "", "traffic profile input")
		profIn    = flag.String("profile-in", "", "alias for -profile (pairs with -profile-out)")
		profOut   = flag.String("profile-out", "", "write the measured profile here")
		traceOut  = flag.String("trace", "", "write the run's flight recording here as Chrome trace JSON (load in ui.perfetto.dev)")
		straggler = flag.Int("stragglers", 0, "print the top-K straggler report after the run (0 = off)")
		seed      = flag.Int64("seed", 0, "simulation seed (0 = derive from the clock)")
		realTime  = flag.Float64("realtime", 0, "real-time pacing factor (0 = as fast as possible, 8 = paper's slowdown)")
		eventCost = flag.Float64("event-cost-us", 15, "modeled per-event cost in µs")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run here (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit here (go tool pprof)")
	)
	flag.Parse()
	if *netPath == "" {
		fatal(fmt.Errorf("-net is required"))
	}
	// Host-level profiling of the simulator itself (hot-path regressions),
	// as opposed to -profile-out, which captures the *simulated* network's
	// traffic profile for the partitioner.
	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			mf, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer mf.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fatal(err)
			}
		}()
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	a, ok := approaches[strings.ToUpper(*name)]
	if !ok {
		fatal(fmt.Errorf("unknown approach %q", *name))
	}

	f, err := os.Open(*netPath)
	if err != nil {
		fatal(err)
	}
	net, err := massf.LoadNetwork(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	routes := massf.NewRouting(net)

	if *profIn != "" {
		if *profPath != "" && *profPath != *profIn {
			fatal(fmt.Errorf("-profile and -profile-in name different files"))
		}
		*profPath = *profIn
	}
	var prof *massf.Profile
	if *profPath != "" {
		pf, err := os.Open(*profPath)
		if err != nil {
			fatal(err)
		}
		prof, err = massf.ReadProfile(pf)
		pf.Close()
		if err != nil {
			fatal(err)
		}
	}

	mapping, err := massf.Map(net, a, massf.MappingConfig{Engines: *engines, Seed: *seed}, prof)
	if err != nil {
		fatal(err)
	}
	end := massf.Time(*horizon * float64(massf.Second))
	cost := massf.Time(*eventCost * float64(massf.Microsecond))
	// The flight recorder costs one ring append per barrier window, so it
	// is only armed when a trace or straggler report was asked for.
	var tel *massf.Telemetry
	if *traceOut != "" || *straggler > 0 {
		tel = massf.NewTelemetry(*engines)
	}
	sim, err := massf.NewSimulation(massf.SimConfig{
		Net: net, Routes: routes, Part: mapping.Part, Engines: *engines,
		Window: mapping.MLL, End: end, Seed: *seed,
		EventCost: cost, RealTimeFactor: *realTime, Telemetry: tel,
	})
	if err != nil {
		fatal(err)
	}

	// Host roles.
	var hosts []massf.NodeID
	for i := range net.Nodes {
		if net.Nodes[i].Kind == massf.Host {
			hosts = append(hosts, massf.NodeID(i))
		}
	}
	if len(hosts) < 9 {
		fatal(fmt.Errorf("network has only %d hosts; need ≥ 9", len(hosts)))
	}
	appHosts := hosts[:7]
	free := hosts[7:]
	nc := *clients
	if nc <= 0 || nc > len(free)-1 {
		nc = len(free) * 4 / 5
	}
	ns := *servers
	if ns <= 0 || nc+ns > len(free) {
		ns = len(free) - nc
	}
	httpStats := massf.InstallHTTP(sim, massf.HTTPConfig{
		Clients: free[:nc], Servers: free[nc : nc+ns],
		MeanGap: 5 * massf.Second, MeanFileBytes: 50_000, Seed: *seed,
	})
	var appFlows []*massf.WorkflowStats
	var flows []massf.Workflow
	switch strings.ToLower(*app) {
	case "scalapack":
		flows = []massf.Workflow{massf.ScaLapackWorkflow(appHosts, massf.DefaultScaLapack())}
	case "gridnpb":
		flows = massf.GridNPBWorkflows(appHosts)
	case "none":
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}
	for _, w := range flows {
		ws, err := massf.InstallWorkflow(sim, w, 0)
		if err != nil {
			fatal(err)
		}
		appFlows = append(appFlows, ws)
	}

	res := sim.Run()
	rep := massf.ReportFor(a.String(), &res, cost)
	fmt.Printf("approach             %v\n", a)
	fmt.Printf("engines              %d\n", *engines)
	fmt.Printf("seed                 %d\n", *seed)
	fmt.Printf("achieved MLL         %v\n", mapping.MLL)
	fmt.Printf("simulated horizon    %v\n", end)
	fmt.Printf("events               %d (%d remote)\n", res.TotalEvents, res.RemoteEvents)
	fmt.Printf("barrier windows      %d\n", res.Windows)
	fmt.Printf("modeled sim time     %.3f s\n", rep.SimTimeSec)
	fmt.Printf("wall time            %.3f s\n", rep.WallSec)
	fmt.Printf("load imbalance       %.3f\n", rep.Imbalance)
	fmt.Printf("parallel efficiency  %.3f\n", rep.Efficiency)
	fmt.Printf("flows                %d started, %d completed, %d pkts dropped\n",
		res.FlowsStarted, res.FlowsCompleted, res.Dropped)
	fmt.Printf("http                 %d requests, %d responses\n",
		httpStats.TotalRequests(), httpStats.TotalResponses())
	for i, ws := range appFlows {
		fmt.Printf("app[%d]               %d rounds, first finish %v\n", i, ws.Rounds, ws.FirstFinish)
	}

	if *profOut != "" {
		p := massf.ProfileFromResult(&res, end)
		of, err := os.Create(*profOut)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		if err := p.Write(of); err != nil {
			fatal(err)
		}
	}

	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		err = massf.WriteChromeTrace(tf, tel.Windows.Snapshot(), map[string]string{
			"approach": a.String(),
			"engines":  fmt.Sprint(*engines),
			"net":      *netPath,
		})
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace                %s (%d windows recorded)\n", *traceOut, res.Windows)
	}
	if *straggler > 0 {
		rep := massf.AnalyzeFlight(tel.Windows.Snapshot(), *straggler)
		rep.AttributeRouters(mapping.Part, res.NodeEvents, 5)
		fmt.Println()
		if err := rep.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "massf:", err)
	os.Exit(1)
}
