// Command massf runs a parallel packet-level network simulation from a DML
// network file: it maps the network onto engine nodes with a chosen
// load-balance approach, drives the paper's background and foreground
// workloads, and reports the evaluation metrics (simulation time, achieved
// MLL, load imbalance, parallel efficiency). A profiling pass can be
// captured with -profile-out and fed back via -profile for the
// profile-based approaches.
//
// Example two-pass PROF workflow:
//
//	massf -net net.dml -approach RANDOM -engines 1 -profile-out prof.txt
//	massf -net net.dml -approach HPROF -engines 90 -profile prof.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"massf"
)

var approaches = map[string]massf.Approach{
	"RANDOM": massf.RANDOM,
	"TOP":    massf.TOP,
	"TOP2":   massf.TOP2,
	"PLACE":  massf.PLACE,
	"PROF":   massf.PROF,
	"PROF2":  massf.PROF2,
	"HTOP":   massf.HTOP,
	"HPROF":  massf.HPROF,
}

func main() {
	if err := run(os.Args[1:], os.Stdout, func() int64 { return time.Now().UnixNano() }); err != nil {
		fmt.Fprintln(os.Stderr, "massf:", err)
		os.Exit(1)
	}
}

// run is the whole command with its effects injected: flags parsed from
// args, the report written to out, and the clock behind `-seed 0` supplied
// by nowNano — so a test can pin the derived seed and assert that a rerun
// with the *printed* seed reproduces the report byte for byte.
func run(args []string, out io.Writer, nowNano func() int64) error {
	fs := flag.NewFlagSet("massf", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		netPath   = fs.String("net", "", "input DML network (required)")
		name      = fs.String("approach", "HPROF", "mapping approach")
		engines   = fs.Int("engines", 16, "simulation engine node count")
		horizon   = fs.Float64("seconds", 8, "simulated seconds")
		app       = fs.String("app", "scalapack", "foreground application: scalapack, gridnpb, none")
		clients   = fs.Int("clients", 0, "background HTTP clients (default: 80% of free hosts)")
		servers   = fs.Int("servers", 0, "background HTTP servers (default: the rest)")
		profPath  = fs.String("profile", "", "traffic profile input")
		profIn    = fs.String("profile-in", "", "alias for -profile (pairs with -profile-out)")
		profOut   = fs.String("profile-out", "", "write the measured profile here")
		faultPath = fs.String("faults", "", "JSON fault script: scripted link/router churn with live reconvergence")
		traceOut  = fs.String("trace", "", "write the run's flight recording here as Chrome trace JSON (load in ui.perfetto.dev)")
		straggler = fs.Int("stragglers", 0, "print the top-K straggler report after the run (0 = off)")
		netStats  = fs.Bool("netstats", false, "attach the network observability plane and print busiest links, drop split and FCT percentiles")
		netSample = fs.Int("netsample", 0, "sample every k-th injected packet for path tracing (0 = off; implies -netstats)")
		pathTrace = fs.String("pathtrace", "", "write sampled packet paths as Chrome trace lanes next to the engine tracks (implies -netsample 16 if unset)")
		jsonOut   = fs.Bool("json", false, "emit the full result as JSON instead of the text report")
		fidelity  = fs.String("fidelity", "packet", "flow fidelity: packet (all traffic packet-level) or hybrid (background HTTP on the analytic fluid plane, foreground packet-level)")
		fluidQtm  = fs.Float64("fluid-quantum-us", 0, "hybrid: batch fluid rate recomputation onto this grid in µs (0 = exact; the scale knob for very large client counts)")
		seed      = fs.Int64("seed", 0, "simulation seed (0 = derive from the clock)")
		realTime  = fs.Float64("realtime", 0, "real-time pacing factor (0 = as fast as possible, 8 = paper's slowdown)")
		eventCost = fs.Float64("event-cost-us", 15, "modeled per-event cost in µs")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run here (go tool pprof)")
		memProf   = fs.String("memprofile", "", "write a heap profile at exit here (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *netPath == "" {
		return fmt.Errorf("-net is required")
	}
	// Host-level profiling of the simulator itself (hot-path regressions),
	// as opposed to -profile-out, which captures the *simulated* network's
	// traffic profile for the partitioner.
	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			mf, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "massf:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "massf:", err)
			}
		}()
	}
	if *seed == 0 {
		*seed = nowNano()
	}
	a, ok := approaches[strings.ToUpper(*name)]
	if !ok {
		return fmt.Errorf("unknown approach %q", *name)
	}
	hybrid := false
	switch strings.ToLower(*fidelity) {
	case "", "packet":
	case "hybrid":
		hybrid = true
	default:
		return fmt.Errorf("unknown -fidelity %q (want packet or hybrid)", *fidelity)
	}

	setupStart := time.Now()
	f, err := os.Open(*netPath)
	if err != nil {
		return err
	}
	net, err := massf.LoadNetwork(f)
	f.Close()
	if err != nil {
		return err
	}
	routes := massf.NewRouting(net)

	if *profIn != "" {
		if *profPath != "" && *profPath != *profIn {
			return fmt.Errorf("-profile and -profile-in name different files")
		}
		*profPath = *profIn
	}
	var prof *massf.Profile
	if *profPath != "" {
		pf, err := os.Open(*profPath)
		if err != nil {
			return err
		}
		prof, err = massf.ReadProfile(pf)
		pf.Close()
		if err != nil {
			return err
		}
	}

	var plane *massf.FaultPlane
	if *faultPath != "" {
		ff, err := os.Open(*faultPath)
		if err != nil {
			return err
		}
		script, err := massf.LoadFaultScript(ff)
		ff.Close()
		if err != nil {
			return err
		}
		if plane, err = massf.NewFaultPlane(net, routes, script); err != nil {
			return err
		}
	}

	mapping, err := massf.Map(net, a, massf.MappingConfig{Engines: *engines, Seed: *seed}, prof)
	if err != nil {
		return err
	}
	end := massf.Time(*horizon * float64(massf.Second))
	cost := massf.Time(*eventCost * float64(massf.Microsecond))
	// The flight recorder costs one ring append per barrier window, so it
	// is only armed when a trace or straggler report was asked for. The
	// path-trace lanes align to the engine tracks, so -pathtrace arms it
	// too.
	var tel *massf.Telemetry
	if *traceOut != "" || *straggler > 0 || *pathTrace != "" {
		tel = massf.NewTelemetry(*engines)
	}
	if *pathTrace != "" && *netSample == 0 {
		*netSample = 16
	}
	var mon *massf.NetMon
	if *netStats || *netSample > 0 {
		bw := make([]int64, len(net.Links))
		for i := range net.Links {
			bw[i] = net.Links[i].Bandwidth
		}
		mon = massf.NewNetMon(massf.NetMonOptions{
			Links: len(net.Links), Horizon: end,
			SampleEvery: *netSample, Bandwidths: bw,
		})
	}
	cfg := massf.SimConfig{
		Net: net, Routes: routes, Part: mapping.Part, Engines: *engines,
		Window: mapping.MLL, End: end, Seed: *seed,
		EventCost: cost, RealTimeFactor: *realTime, Telemetry: tel,
		NetMon: mon,
	}
	if plane != nil {
		cfg.Faults = plane
	}

	// Host roles (needed before NewSimulation: a hybrid run's fluid plane
	// is built from the client/server roles and attached at construction).
	var hosts []massf.NodeID
	for i := range net.Nodes {
		if net.Nodes[i].Kind == massf.Host {
			hosts = append(hosts, massf.NodeID(i))
		}
	}
	if len(hosts) < 9 {
		return fmt.Errorf("network has only %d hosts; need ≥ 9", len(hosts))
	}
	if plane != nil {
		plane.Prepare(hosts)
	}
	appHosts := hosts[:7]
	free := hosts[7:]
	nc := *clients
	if nc <= 0 || nc > len(free)-1 {
		nc = len(free) * 4 / 5
	}
	ns := *servers
	if ns <= 0 || nc+ns > len(free) {
		ns = len(free) - nc
	}
	httpCfg := massf.HTTPConfig{
		Clients: free[:nc], Servers: free[nc : nc+ns],
		MeanGap: 5 * massf.Second, MeanFileBytes: 50_000, Seed: *seed,
	}
	var httpStats *massf.HTTPStats
	if hybrid {
		bgFlows, next, stats := massf.FluidHTTPWorkload(httpCfg, end)
		fcfg := massf.FluidConfig{
			Net: net, Routes: routes, End: end,
			Quantum: massf.Time(*fluidQtm * float64(massf.Microsecond)),
			Next:    next,
		}
		if plane != nil {
			fcfg.Faults = plane
		}
		fp, err := massf.BuildFluidPlane(fcfg, bgFlows)
		if err != nil {
			return err
		}
		cfg.Fluid = fp
		httpStats = stats
	}
	sim, err := massf.NewSimulation(cfg)
	if err != nil {
		return err
	}
	if !hybrid {
		httpStats = massf.InstallHTTP(sim, httpCfg)
	}
	var appFlows []*massf.WorkflowStats
	var flows []massf.Workflow
	switch strings.ToLower(*app) {
	case "scalapack":
		flows = []massf.Workflow{massf.ScaLapackWorkflow(appHosts, massf.DefaultScaLapack())}
	case "gridnpb":
		flows = massf.GridNPBWorkflows(appHosts)
	case "none":
	default:
		return fmt.Errorf("unknown app %q", *app)
	}
	for _, w := range flows {
		ws, err := massf.InstallWorkflow(sim, w, 0)
		if err != nil {
			return err
		}
		appFlows = append(appFlows, ws)
	}

	setupSec := time.Since(setupStart).Seconds()
	res := sim.Run()
	mem := massf.ReadMemStats()
	rep := massf.ReportFor(a.String(), &res, cost)
	if *jsonOut {
		doc := map[string]any{
			"approach":   a.String(),
			"engines":    *engines,
			"fidelity":   strings.ToLower(*fidelity),
			"seed":       *seed,
			"mll_ns":     int64(mapping.MLL),
			"horizon_ns": int64(end),
			"setup_sec":  setupSec,
			"mem":        mem,
			"report":     rep,
			"http": map[string]uint64{
				"requests": httpStats.TotalRequests(), "responses": httpStats.TotalResponses(),
			},
		}
		// Stats.Err is an interface; surface it as a string and clear it so
		// the embedded Result marshals cleanly.
		if res.Err != nil {
			doc["error"] = res.Err.Error()
			res.Err = nil
		}
		doc["result"] = &res
		if len(appFlows) > 0 {
			apps := make([]map[string]any, len(appFlows))
			for i, ws := range appFlows {
				apps[i] = map[string]any{"rounds": ws.Rounds, "first_finish_ns": int64(ws.FirstFinish)}
			}
			doc["apps"] = apps
		}
		if plane != nil {
			doc["faults"] = plane.Events()
		}
		if mon != nil {
			doc["netmon"] = map[string]any{
				"summary": mon.Summary(),
				"links":   mon.LinkReport(32, false),
				"flows":   mon.FlowReport(false),
			}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	}
	if !*jsonOut {
		printTextReport(out, a, *engines, *seed, mapping.MLL, end, setupSec, mem, &res, rep, httpStats, appFlows, plane, mon)
	}

	if *profOut != "" {
		p := massf.ProfileFromResult(&res, end)
		of, err := os.Create(*profOut)
		if err != nil {
			return err
		}
		if err := p.Write(of); err != nil {
			of.Close()
			return err
		}
		if err := of.Close(); err != nil {
			return err
		}
	}

	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		// One shared build serves every engine in-process: broadcast the
		// setup span to all tracks so the trace shows what a distributed
		// worker's rebuild would cost.
		setupSpans := make([]int64, *engines)
		for i := range setupSpans {
			setupSpans[i] = int64(setupSec * 1e9)
		}
		err = massf.WriteChromeTraceEvents(tf,
			massf.BuildTraceEventsWithSetup(tel.Windows.Snapshot(), setupSpans),
			map[string]string{
				"approach": a.String(),
				"engines":  fmt.Sprint(*engines),
				"net":      *netPath,
			})
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "trace                %s (%d windows recorded)\n", *traceOut, res.Windows)
	}
	if *pathTrace != "" {
		recs := tel.Windows.Snapshot()
		spans := mon.Spans()
		events := massf.BuildTraceEvents(recs)
		events = append(events, massf.PathTraceEvents(spans, recs)...)
		pf, err := os.Create(*pathTrace)
		if err != nil {
			return err
		}
		err = massf.WriteChromeTraceEvents(pf, events, map[string]string{
			"approach":     a.String(),
			"engines":      fmt.Sprint(*engines),
			"net":          *netPath,
			"sample_every": fmt.Sprint(*netSample),
		})
		if cerr := pf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pathtrace            %s (%d sampled paths, %d hop spans)\n",
			*pathTrace, len(mon.Paths()), len(spans))
	}
	if *straggler > 0 {
		rep := massf.AnalyzeFlight(tel.Windows.Snapshot(), *straggler)
		rep.AttributeRouters(mapping.Part, res.NodeEvents, 5)
		fmt.Fprintln(out)
		if err := rep.WriteText(out); err != nil {
			return err
		}
	}
	return nil
}

// printTextReport writes the human-readable run report: the headline
// metrics, per-app workflow progress, the fault timeline when a fault
// script ran, and the network observability digest when the plane was
// attached.
func printTextReport(out io.Writer, a massf.Approach, engines int, seed int64,
	mll, end massf.Time, setupSec float64, mem massf.MemSample,
	res *massf.Result, rep massf.Report,
	httpStats *massf.HTTPStats, appFlows []*massf.WorkflowStats,
	plane *massf.FaultPlane, mon *massf.NetMon) {
	fmt.Fprintf(out, "approach             %v\n", a)
	fmt.Fprintf(out, "engines              %d\n", engines)
	fmt.Fprintf(out, "seed                 %d\n", seed)
	fmt.Fprintf(out, "achieved MLL         %v\n", mll)
	fmt.Fprintf(out, "simulated horizon    %v\n", end)
	fmt.Fprintf(out, "setup time           %.3f s\n", setupSec)
	fmt.Fprintf(out, "memory               %.1f MiB heap in use, %.1f MiB peak RSS\n",
		float64(mem.HeapInuse)/(1<<20), float64(mem.PeakRSS)/(1<<20))
	fmt.Fprintf(out, "events               %d (%d remote)\n", res.TotalEvents, res.RemoteEvents)
	fmt.Fprintf(out, "barrier windows      %d\n", res.Windows)
	fmt.Fprintf(out, "modeled sim time     %.3f s\n", rep.SimTimeSec)
	fmt.Fprintf(out, "wall time            %.3f s\n", rep.WallSec)
	fmt.Fprintf(out, "load imbalance       %.3f\n", rep.Imbalance)
	fmt.Fprintf(out, "parallel efficiency  %.3f\n", rep.Efficiency)
	fmt.Fprintf(out, "flows                %d started, %d completed, %d pkts dropped\n",
		res.FlowsStarted, res.FlowsCompleted, res.Dropped)
	if res.FluidDone != nil {
		fmt.Fprintf(out, "fluid                %d flows started, %d completed, %.1f Mbit delivered\n",
			res.FluidStarted, res.FluidCompleted, float64(res.FluidDeliveredBits)/1e6)
	}
	fmt.Fprintf(out, "http                 %d requests, %d responses\n",
		httpStats.TotalRequests(), httpStats.TotalResponses())
	for i, ws := range appFlows {
		fmt.Fprintf(out, "app[%d]               %d rounds, first finish %v\n", i, ws.Rounds, ws.FirstFinish)
	}
	if plane != nil {
		var lost uint64
		for _, d := range res.FaultDrops {
			lost += d
		}
		fmt.Fprintf(out, "faults               %d events, %d pkts lost during reconvergence\n",
			plane.NumFaults(), lost)
		for i, ev := range plane.Events() {
			target := fmt.Sprintf("link %d", ev.Link)
			if ev.Kind == massf.NodeFaultDown || ev.Kind == massf.NodeFaultUp {
				target = fmt.Sprintf("node %d", ev.Node)
			}
			if ev.NoOp {
				fmt.Fprintf(out, "fault[%d]             %s %s at %v: no-op\n", i, ev.Kind, target, ev.At)
				continue
			}
			var drops uint64
			if i < len(res.FaultDrops) {
				drops = res.FaultDrops[i]
			}
			fmt.Fprintf(out, "fault[%d]             %s %s at %v: %d bgp msgs, %d routes changed, routes live at %v, %d pkts lost\n",
				i, ev.Kind, target, ev.At, ev.UpdateMsgs, ev.RoutesChanged, ev.RoutesAt, drops)
		}
	}
	if mon != nil {
		sum := mon.Summary()
		fmt.Fprintf(out, "net drops            %d tail, %d no-route, %d ttl, %d fault\n",
			sum.DropsTail, sum.DropsNoRoute, sum.DropsTTL, sum.DropsFault)
		fmt.Fprintf(out, "net flows            %d recorded, %d completed\n",
			sum.FlowsRecorded, sum.FlowsCompleted)
		if sum.FlowsCompleted > 0 {
			fmt.Fprintf(out, "net FCT              p50 %v, p90 %v, p99 %v\n",
				massf.Time(sum.FCTP50NS), massf.Time(sum.FCTP90NS), massf.Time(sum.FCTP99NS))
		}
		lr := mon.LinkReport(5, false)
		for i, d := range lr.Links {
			fmt.Fprintf(out, "net link[%d]          link %d dir %d: %d bits, mean util %.3f, peak %.3f, max queue %v\n",
				i, d.Link, d.Dir, d.Bits, d.MeanUtil, d.PeakUtil, massf.Time(d.QueueMaxNS))
		}
		if mon.Sampling() {
			fmt.Fprintf(out, "net paths            %d sampled (every %d pkts), %d hop spans\n",
				len(mon.Paths()), mon.SampleEvery(), sum.Spans)
		}
	}
}
