package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"massf"
)

// writeTestNet saves a small generated network as DML and returns its path.
// 12 hosts clears the command's ≥9-host floor (7 app hosts + clients +
// servers).
func writeTestNet(t *testing.T) string {
	t.Helper()
	net, err := massf.GenerateFlat(massf.FlatOptions{Routers: 30, Hosts: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.dml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := massf.SaveNetwork(f, net); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// stripWallTime removes the only line of the report that legitimately
// differs between identical runs (host wall-clock time).
func stripWallTime(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "wall time") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

var seedLine = regexp.MustCompile(`(?m)^seed\s+(\d+)$`)

// TestDerivedSeedIsReproducible is the regression for the time-derived
// -seed 0 path: the clock is injected, the effective seed is printed, and
// re-running with that printed seed as an explicit -seed reproduces the
// whole report byte for byte. Before the clock was injectable, `-seed 0`
// runs were unreproducible by construction.
func TestDerivedSeedIsReproducible(t *testing.T) {
	netPath := writeTestNet(t)
	base := []string{"-net", netPath, "-engines", "4", "-approach", "TOP2", "-seconds", "2", "-app", "none"}

	const derived = int64(987654321012345)
	var first bytes.Buffer
	err := run(append([]string{}, base...), &first, func() int64 { return derived })
	if err != nil {
		t.Fatal(err)
	}
	m := seedLine.FindStringSubmatch(first.String())
	if m == nil {
		t.Fatalf("report does not print the effective seed:\n%s", first.String())
	}
	if m[1] != fmt.Sprint(derived) {
		t.Fatalf("printed seed %s, want the injected clock value %d", m[1], derived)
	}

	// Re-run with the printed seed passed explicitly; the clock must not
	// be consulted at all.
	var second bytes.Buffer
	err = run(append(append([]string{}, base...), "-seed", m[1]), &second,
		func() int64 { t.Fatal("explicit -seed consulted the clock"); return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripWallTime(second.String()), stripWallTime(first.String()); got != want {
		t.Errorf("report not reproduced byte for byte from the printed seed:\n--- derived run ---\n%s\n--- seeded rerun ---\n%s", want, got)
	}
}

// TestRunRejectsBadFlags: errors surface as returned errors, not exits.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out, func() int64 { return 1 }); err == nil {
		t.Error("missing -net accepted")
	}
	netPath := writeTestNet(t)
	if err := run([]string{"-net", netPath, "-approach", "NOPE"}, &out, func() int64 { return 1 }); err == nil {
		t.Error("unknown approach accepted")
	}
}
