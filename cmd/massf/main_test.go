package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"massf"
)

// writeTestNet saves a small generated network as DML and returns its path.
// 12 hosts clears the command's ≥9-host floor (7 app hosts + clients +
// servers).
func writeTestNet(t *testing.T) string {
	t.Helper()
	net, err := massf.GenerateFlat(massf.FlatOptions{Routers: 30, Hosts: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.dml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := massf.SaveNetwork(f, net); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// stripWallTime removes the only line of the report that legitimately
// differs between identical runs (host wall-clock time, process memory).
func stripWallTime(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "wall time") ||
			strings.HasPrefix(line, "setup time") ||
			strings.HasPrefix(line, "memory") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

var seedLine = regexp.MustCompile(`(?m)^seed\s+(\d+)$`)

// TestDerivedSeedIsReproducible is the regression for the time-derived
// -seed 0 path: the clock is injected, the effective seed is printed, and
// re-running with that printed seed as an explicit -seed reproduces the
// whole report byte for byte. Before the clock was injectable, `-seed 0`
// runs were unreproducible by construction.
func TestDerivedSeedIsReproducible(t *testing.T) {
	netPath := writeTestNet(t)
	base := []string{"-net", netPath, "-engines", "4", "-approach", "TOP2", "-seconds", "2", "-app", "none"}

	const derived = int64(987654321012345)
	var first bytes.Buffer
	err := run(append([]string{}, base...), &first, func() int64 { return derived })
	if err != nil {
		t.Fatal(err)
	}
	m := seedLine.FindStringSubmatch(first.String())
	if m == nil {
		t.Fatalf("report does not print the effective seed:\n%s", first.String())
	}
	if m[1] != fmt.Sprint(derived) {
		t.Fatalf("printed seed %s, want the injected clock value %d", m[1], derived)
	}

	// Re-run with the printed seed passed explicitly; the clock must not
	// be consulted at all.
	var second bytes.Buffer
	err = run(append(append([]string{}, base...), "-seed", m[1]), &second,
		func() int64 { t.Fatal("explicit -seed consulted the clock"); return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripWallTime(second.String()), stripWallTime(first.String()); got != want {
		t.Errorf("report not reproduced byte for byte from the printed seed:\n--- derived run ---\n%s\n--- seeded rerun ---\n%s", want, got)
	}
}

// TestNetObservabilityFlags drives the command with the observability
// plane on: the text report gains the net digest, -pathtrace writes a
// loadable Chrome trace with path lanes, and -json emits the whole
// result — including the netmon views — as one JSON document.
func TestNetObservabilityFlags(t *testing.T) {
	netPath := writeTestNet(t)
	tracePath := filepath.Join(t.TempDir(), "paths.json")
	base := []string{"-net", netPath, "-engines", "4", "-approach", "TOP2",
		"-seconds", "2", "-app", "none", "-seed", "7"}

	var text bytes.Buffer
	err := run(append(append([]string{}, base...),
		"-netstats", "-netsample", "4", "-pathtrace", tracePath), &text,
		func() int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"net drops", "net flows", "net FCT", "net link[0]", "net paths", "pathtrace "} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			PID  int    `json:"pid"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("pathtrace is not Chrome trace JSON: %v", err)
	}
	pids := map[int]int{}
	for _, ev := range trace.TraceEvents {
		pids[ev.PID]++
	}
	if len(pids) < 2 {
		t.Fatalf("pathtrace has no extra path lanes beside the engine tracks: pids %v", pids)
	}

	var jsonBuf bytes.Buffer
	err = run(append(append([]string{}, base...), "-json", "-netsample", "4"), &jsonBuf,
		func() int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Approach string `json:"approach"`
		Seed     int64  `json:"seed"`
		Result   struct {
			FlowsCompleted uint64 `json:"FlowsCompleted"`
			LinkDrops      []any  `json:"LinkDrops"`
		} `json:"result"`
		NetMon struct {
			Summary struct {
				SampleEvery int `json:"sample_every"`
				Spans       int `json:"spans"`
			} `json:"summary"`
			Links struct {
				Links []any `json:"links"`
			} `json:"links"`
			Flows struct {
				Recorded int `json:"recorded"`
			} `json:"flows"`
		} `json:"netmon"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, jsonBuf.String())
	}
	if doc.Approach != "TOP2" || doc.Seed != 7 {
		t.Fatalf("json header wrong: %+v", doc)
	}
	if doc.Result.FlowsCompleted == 0 || len(doc.Result.LinkDrops) == 0 {
		t.Fatalf("json result missing flow/drop detail: %+v", doc.Result)
	}
	if doc.NetMon.Summary.SampleEvery != 4 || doc.NetMon.Summary.Spans == 0 ||
		len(doc.NetMon.Links.Links) == 0 || doc.NetMon.Flows.Recorded == 0 {
		t.Fatalf("json netmon views empty: %+v", doc.NetMon)
	}
	if strings.Contains(jsonBuf.String(), "approach             ") {
		t.Fatal("-json run also printed the text report")
	}
}

// TestRunRejectsBadFlags: errors surface as returned errors, not exits.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out, func() int64 { return 1 }); err == nil {
		t.Error("missing -net accepted")
	}
	netPath := writeTestNet(t)
	if err := run([]string{"-net", netPath, "-approach", "NOPE"}, &out, func() int64 { return 1 }); err == nil {
		t.Error("unknown approach accepted")
	}
}
