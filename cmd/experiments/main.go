// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 3, 5–13 plus the headline claims) and prints them as
// text tables. By default it runs at the reduced scale (2,000 routers / 20
// AS × 100 routers, 16 engines); -full switches to the paper's 20,000
// routers / 100 AS × 200 routers on 90 engines (slow).
//
// Examples:
//
//	experiments                 # everything, reduced scale
//	experiments -fig 5          # just the synchronization cost curve
//	experiments -fig 10-13      # the multi-AS evaluation
//	experiments -full           # paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"massf/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which figures to run: all, 3, 5, 6-9, 10-13, headline, ablations")
		full    = flag.Bool("full", false, "run at the paper's full scale (20k routers, 90 engines)")
		seconds = flag.Float64("seconds", 0, "override the simulated horizon in seconds")
		engines = flag.Int("engines", 0, "override the engine-node count")
		seed    = flag.Int64("seed", 0, "override the experiment seed")
	)
	flag.Parse()

	sc := experiments.Reduced()
	if *full || os.Getenv("MASSF_FULL") == "1" {
		sc = experiments.Paper()
	}
	if *seconds > 0 {
		sc.Horizon = experiments.SecondsToTime(*seconds)
	}
	if *engines > 0 {
		sc.Engines = *engines
	}
	if *seed > 0 {
		sc.Seed = *seed
	}

	wantSingle := *fig == "all" || *fig == "3" || *fig == "6-9" || *fig == "headline"
	wantMulti := *fig == "all" || *fig == "10-13" || *fig == "headline"
	wantFig5 := *fig == "all" || *fig == "5"

	if *fig == "ablations" {
		runAblations(sc)
		return
	}

	if wantFig5 {
		experiments.Fig5Table(experiments.DefaultSync()).Fprint(os.Stdout)
		fmt.Println()
	}
	if wantSingle {
		runSuite(sc, false, *fig)
	}
	if wantMulti {
		runSuite(sc, true, *fig)
	}
}

func runSuite(sc experiments.Scale, multi bool, fig string) {
	t0 := time.Now()
	var st *experiments.Setup
	var err error
	if multi {
		st, err = experiments.BuildMultiAS(sc)
	} else {
		st, err = experiments.BuildSingleAS(sc)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "built %s %s testbed in %v (%d nodes, %d links)\n",
		sc.Name, label(multi), time.Since(t0).Round(time.Millisecond), len(st.Net.Nodes), len(st.Net.Links))

	var evals []*experiments.Eval
	for _, w := range []experiments.Workload{experiments.ScaLapack, experiments.GridNPB} {
		t1 := time.Now()
		ev, err := experiments.Evaluate(st, w)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "evaluated %v on %s in %v\n", w, label(multi), time.Since(t1).Round(time.Millisecond))
		evals = append(evals, ev)
	}
	if fig == "all" || fig == "3" {
		if !multi && evals[0].Fig3 != nil {
			experiments.Fig3Table(evals[0].Fig3).Fprint(os.Stdout)
			fmt.Println()
		}
	}
	if fig != "3" {
		experiments.SimTimeTable(evals, multi).Fprint(os.Stdout)
		fmt.Println()
		experiments.MLLTable(evals, multi).Fprint(os.Stdout)
		fmt.Println()
		experiments.ImbalanceTable(evals, multi).Fprint(os.Stdout)
		fmt.Println()
		experiments.EfficiencyTable(evals, multi).Fprint(os.Stdout)
		fmt.Println()
		experiments.HeadlineTable(evals, multi).Fprint(os.Stdout)
		fmt.Println()
	}
}

// runAblations prints the design-choice ablation tables.
func runAblations(sc experiments.Scale) {
	st, err := experiments.BuildSingleAS(sc)
	if err != nil {
		fatal(err)
	}
	if err := st.RunProfiling(experiments.ScaLapack); err != nil {
		fatal(err)
	}
	for _, gen := range []func(*experiments.Setup) (*experiments.Table, error){
		experiments.AblationTmllStep,
		experiments.AblationSelectionMetric,
		experiments.AblationEdgeWeights,
	} {
		t, err := gen(st)
		if err != nil {
			fatal(err)
		}
		t.Fprint(os.Stdout)
		fmt.Println()
	}
	experiments.AblationRefinement(20000, 90, 5).Fprint(os.Stdout)
	fmt.Println()
}

func label(multi bool) string {
	if multi {
		return "multi-AS"
	}
	return "single-AS"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
