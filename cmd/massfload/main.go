// Command massfload is the service load harness: it boots the full
// massfd stack in-process — run-control manager, versioned HTTP API,
// live agent ingest plane — drives it over real loopback HTTP and TCP,
// and records the service-level numbers the daemon is sized by:
//
//   - submit-to-first-window latency, cold scenario build vs the
//     setup-cache warm path (the scheduler's 10× re-submit claim)
//   - p99 submit round-trip latency and concurrent-run throughput
//     under a many-client submission hammer
//   - sustained injected events/sec through thousands of concurrent
//     agent connections, with the heap sampled to show memory stays
//     bounded under connection load
//
// The capture is written as one JSON document (default
// BENCH_service.json; `make bench-service` commits the full-size run,
// `make service` is the small smoke in `make check`).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"massf/internal/agent"
	"massf/internal/runctl"
	"massf/internal/runspec"
)

func main() {
	var (
		out      = flag.String("out", "BENCH_service.json", "output JSON path (- for stdout)")
		label    = flag.String("label", "dev", "label recorded with the capture")
		workers  = flag.Int("workers", maxInt(2, runtime.NumCPU()/2), "worker-pool slots of the embedded daemon")
		conns    = flag.Int("conns", 1000, "concurrent agent ingest connections")
		ingestS  = flag.Float64("ingest-seconds", 5, "ingest measurement window (wall seconds)")
		submits  = flag.Int("submits", 96, "total runs in the submission hammer")
		clients  = flag.Int("clients", 8, "concurrent submitters in the hammer")
		coldSize = flag.Int("cold-routers", 300, "router count of the cold-build scenario")
	)
	flag.Parse()

	// The embedded service: the same components cmd/massfd wires, driven
	// over real loopback HTTP and TCP so every measurement includes the
	// wire path.
	ing := agent.NewIngest(32) // small window: the hammer runs against backpressure
	mgr := runctl.NewManagerOpts(runctl.Options{
		Workers:    *workers,
		RingCap:    1024,
		QueueDepth: *submits + 16,
		Ingest:     ing,
	})
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(httpLn, runctl.NewServer(mgr))
	ingLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go ing.Serve(ingLn)
	base := "http://" + httpLn.Addr().String() + "/api/v1"

	doc := capture{
		Label:        *label,
		CapturedUnix: time.Now().Unix(),
		Go:           runtime.Version(),
		Workers:      *workers,
	}
	doc.FirstWindow = benchFirstWindow(base, *coldSize)
	doc.Submit = benchSubmitHammer(base, *submits, *clients)
	doc.Ingest = benchIngest(base, ingLn.Addr().String(), ing, *conns, *ingestS)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	mgr.Shutdown(ctx)
	cancel()
	ing.Close()

	enc, _ := json.MarshalIndent(doc, "", "  ")
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("massfload: capture written to %s", *out)
	log.Printf("massfload: first window cold %.1fms warm %.1fms (%.1f× speedup)",
		doc.FirstWindow.ColdMS, doc.FirstWindow.WarmMS, doc.FirstWindow.Speedup)
	log.Printf("massfload: %d submits p50 %.2fms p99 %.2fms, %.1f runs/s completed",
		doc.Submit.Runs, doc.Submit.P50MS, doc.Submit.P99MS, doc.Submit.RunsPerSec)
	log.Printf("massfload: %d conns injected %.0f events/s (heap %.1f MiB)",
		doc.Ingest.Conns, doc.Ingest.InjectedPerSec, doc.Ingest.HeapInuseMB)
}

type capture struct {
	Label        string      `json:"label"`
	CapturedUnix int64       `json:"captured_unix"`
	Go           string      `json:"go"`
	Workers      int         `json:"workers"`
	FirstWindow  firstWindow `json:"first_window"`
	Submit       submitStats `json:"submit"`
	Ingest       ingestStats `json:"ingest"`
}

type firstWindow struct {
	Routers     int     `json:"routers"`
	ColdMS      float64 `json:"cold_ms"`
	WarmMS      float64 `json:"warm_ms"`
	Speedup     float64 `json:"speedup"`
	ColdSetupMS float64 `json:"cold_setup_ms"`
	WarmSetupMS float64 `json:"warm_setup_ms"`
	WarmCached  bool    `json:"warm_build_cached"`
}

type submitStats struct {
	Runs       int     `json:"runs"`
	Submitters int     `json:"submitters"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	WallSec    float64 `json:"wall_sec"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

type ingestStats struct {
	Conns          int     `json:"conns"`
	Window         int     `json:"window"`
	Seconds        float64 `json:"seconds"`
	SentTotal      uint64  `json:"sent_total"`
	SentPerSec     float64 `json:"sent_per_sec"`
	InjectedPerSec float64 `json:"injected_per_sec"`
	Backpressured  uint64  `json:"backpressured_total"`
	Delivered      uint64  `json:"delivered_total"`
	Dropped        uint64  `json:"dropped_total"`
	HeapInuseMB    float64 `json:"heap_inuse_mb"`
}

// benchFirstWindow measures submit-to-first-window on a deliberately
// expensive scenario, cold (full topology + routing build) and then warm
// (identical content key served from the setup cache).
func benchFirstWindow(base string, routers int) firstWindow {
	spec := runctl.Spec{
		Flat:     &runctl.FlatSpec{Routers: routers, Hosts: routers / 5},
		Approach: "HTOP",
		RunSpec:  runspec.RunSpec{Engines: 2, Seconds: 0.2, Seed: 42},
	}
	cold, coldInfo := timeToFirstWindow(base, spec)
	waitTerminal(base, coldInfo.ID)
	warm, warmInfo := timeToFirstWindow(base, spec)
	waitTerminal(base, warmInfo.ID)
	warmFinal := getInfo(base, warmInfo.ID)
	coldFinal := getInfo(base, coldInfo.ID)
	fw := firstWindow{
		Routers:     routers,
		ColdMS:      float64(cold) / float64(time.Millisecond),
		WarmMS:      float64(warm) / float64(time.Millisecond),
		ColdSetupMS: coldFinal.SetupMS,
		WarmSetupMS: warmFinal.SetupMS,
		WarmCached:  warmFinal.BuildCached,
	}
	if warm > 0 {
		fw.Speedup = float64(cold) / float64(warm)
	}
	return fw
}

// timeToFirstWindow submits spec and polls tightly until the run reports
// its first completed barrier window.
func timeToFirstWindow(base string, spec runctl.Spec) (time.Duration, runctl.Info) {
	start := time.Now()
	info := submit(base, spec)
	for info.Windows == 0 {
		if info.State.Terminal() {
			log.Fatalf("massfload: run %s ended %s before its first window (err=%q)",
				info.ID, info.State, info.Error)
		}
		time.Sleep(time.Millisecond)
		info = getInfo(base, info.ID)
	}
	return time.Since(start), info
}

// benchSubmitHammer fires total submissions from n concurrent clients
// against one cached scenario, recording per-POST round-trip latency and
// the completed-run throughput of the pool.
func benchSubmitHammer(base string, total, n int) submitStats {
	spec := runctl.Spec{
		Flat:     &runctl.FlatSpec{Routers: 40, Hosts: 16},
		Approach: "HTOP",
		RunSpec:  runspec.RunSpec{Engines: 1, Seconds: 0.1, Seed: 7},
	}
	// Pre-warm the scenario so the hammer measures scheduling, not builds.
	waitTerminal(base, submit(base, spec).ID)

	var (
		mu   sync.Mutex
		lats []time.Duration
		ids  []string
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/n; i++ {
				t0 := time.Now()
				info := submit(base, spec)
				lat := time.Since(t0)
				mu.Lock()
				lats = append(lats, lat)
				ids = append(ids, info.ID)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, id := range ids {
		waitTerminal(base, id)
	}
	wall := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	return submitStats{
		Runs: len(ids), Submitters: n,
		P50MS: pct(0.50), P99MS: pct(0.99),
		WallSec:    wall.Seconds(),
		RunsPerSec: float64(len(ids)) / wall.Seconds(),
	}
}

// benchIngest attaches conns live agent connections to one paced run and
// measures the sustained injection rate for a wall-clock window, senders
// self-throttled by the credit windows (the backpressure contract under
// full load).
func benchIngest(base, ingAddr string, ing *agent.Ingest, conns int, seconds float64) ingestStats {
	spec := runctl.Spec{
		Name:     "ingest-load",
		Flat:     &runctl.FlatSpec{Routers: 60, Hosts: 64},
		Approach: "HTOP",
		RunSpec: runspec.RunSpec{
			Engines: 2, Seconds: 600, Seed: 9,
			RealTimeFactor: 1, // paced: the run outlives the measurement window
		},
		Ingest: true,
	}
	info := submit(base, spec)

	// The agent registers when execution starts; attach with retry until
	// the run is there.
	dial := func() *agent.Client {
		deadline := time.Now().Add(30 * time.Second)
		for {
			cl, err := agent.Dial(ingAddr, info.ID, 0)
			if err == nil {
				return cl
			}
			if time.Now().After(deadline) {
				log.Fatalf("massfload: attach to %s never succeeded: %v", info.ID, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	clients := make([]*agent.Client, conns)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64)
	for i := range clients {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			clients[i] = dial()
			if i%16 == 0 { // a listening minority exercises the delivery path
				clients[i].Listen(i % clients[i].Hosts())
			}
		}(i)
	}
	wg.Wait()
	if got := ing.Conns(); got < conns {
		log.Fatalf("massfload: only %d/%d connections attached", got, conns)
	}

	// Senders: every connection pushes small messages as fast as its
	// credit window allows for the whole measurement.
	stop := make(chan struct{})
	payload := bytes.Repeat([]byte{0x5a}, 64)
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *agent.Client) {
			defer wg.Done()
			h := cl.Hosts()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := cl.Send((i+n)%h, (i+n+1)%h, payload); err != nil {
					return
				}
			}
		}(i, cl)
	}

	// Let the pipeline fill, then measure a steady window.
	time.Sleep(time.Second)
	s0, _, _, _ := ing.Counters()
	i0 := getInfo(base, info.ID)
	t0 := time.Now()
	time.Sleep(time.Duration(seconds * float64(time.Second)))
	s1, bp, delivered, dropped := ing.Counters()
	i1 := getInfo(base, info.ID)
	elapsed := time.Since(t0).Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	close(stop)
	for _, cl := range clients {
		cl.Close()
	}
	wg.Wait()
	httpDo("DELETE", base+"/runs/"+info.ID)

	st := ingestStats{
		Conns:         conns,
		Window:        32,
		Seconds:       elapsed,
		SentTotal:     s1,
		SentPerSec:    float64(s1-s0) / elapsed,
		Backpressured: bp,
		Delivered:     delivered,
		Dropped:       dropped,
		HeapInuseMB:   float64(ms.HeapInuse) / (1 << 20),
	}
	if i0.Agent != nil && i1.Agent != nil {
		st.InjectedPerSec = float64(i1.Agent.Injected-i0.Agent.Injected) / elapsed
	}
	return st
}

// --- tiny HTTP client helpers -------------------------------------------

func submit(base string, spec runctl.Spec) runctl.Info {
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("massfload: submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var env struct {
			Error struct{ Code, Message string } `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&env)
		log.Fatalf("massfload: submit: %d %s %s", resp.StatusCode, env.Error.Code, env.Error.Message)
	}
	var info runctl.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		log.Fatalf("massfload: submit decode: %v", err)
	}
	return info
}

func getInfo(base, id string) runctl.Info {
	resp, err := http.Get(base + "/runs/" + id)
	if err != nil {
		log.Fatalf("massfload: get %s: %v", id, err)
	}
	defer resp.Body.Close()
	var info runctl.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		log.Fatalf("massfload: get %s: decode: %v", id, err)
	}
	return info
}

func waitTerminal(base, id string) runctl.Info {
	for {
		info := getInfo(base, id)
		if info.State.Terminal() {
			if info.State != runctl.StateDone {
				log.Fatalf("massfload: run %s ended %s (err=%q)", id, info.State, info.Error)
			}
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func httpDo(method, url string) {
	req, _ := http.NewRequest(method, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("massfload: %s %s: %v", method, url, err)
	}
	resp.Body.Close()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
